"""Vectorised batched-replica engine: ``B`` independent runs per numpy step.

The engine keeps the whole ensemble as two matrices — loads ``(n, B)`` and
oriented edge flows ``(m, B)``, one replica per column — and advances every
replica simultaneously with CSR edge-wise kernels:

* the per-edge load difference ``x_u - x_v`` is one sparse matmul
  ``E @ load`` with ``E[k] = +1 at edge_u[k], -1 at edge_v[k]`` (bit-exact
  with the gather/subtract formulation because ``edge_u < edge_v`` keeps the
  CSR accumulation in the same order),
* applying flows is ``load += D @ act`` with ``D = +1 at (edge_v, k),
  -1 at (edge_u, k)``,
* per-node outgoing totals (negative-load tracking, Section V) come from the
  identity ``outgoing = (W @ |act| - D @ act) / 2`` with ``W`` the unsigned
  incidence operator — no extra scatter pass.

FOS, SOS, rounding, per-replica hybrid switching and the Section VI metrics
are all vectorised across the batch.  Hybrid switching uses the algebraic
fact that FOS is SOS with ``beta = 1`` (``(1-1)*y + 1*gradient`` is exactly
the gradient in IEEE arithmetic), so a per-replica beta row vector lets
individual replicas switch mid-run without masking.

For the deterministic roundings (floor / nearest / ceil) every elementwise
operation reproduces the reference engine's expression tree, so integral
traces agree *bit for bit* — the cross-engine equivalence suite enforces
this.  Randomised roundings draw from the same distributions (Observation 1
of the paper) but consume per-replica spawned streams
(:func:`~repro.engines.base.rounding_stream`, keyed by the replica's
``replica_keys`` identity, default its global batch index), so they match
the reference statistically, not stream for stream — while every replica's
trajectory is independent of the batch composition, which is what lets the
sharded engine split a batch across worker processes bit-identically.
"""

from __future__ import annotations

import logging

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from ..exceptions import ConfigurationError, SchemeError, SimulationError
from ..core.alphas import resolve_alphas
from ..core.churn import (
    apply_handoffs,
    masked_dynamic_values,
    masked_static_values,
    remap_flows,
    resolve_churn,
)
from ..core.records import (
    DYNAMIC_FLOAT_FIELDS,
    FLOAT_FIELDS,
    StreamingStats,
)
from ..core.rounding import make_rounding
from ..core.spectral import (
    fwht,
    hypercube_wht_eigenvalues,
    torus_rfft_eigenvalues,
)
from ..graphs.speeds import uniform_speeds, validate_speeds
from ..graphs.topology import Topology
from ..kernels import ROUNDING_CODES, ensure_warm, resolve_kernel

from .base import (
    ArrivalBatch,
    Engine,
    EngineConfig,
    RecordBatch,
    ResolvedReplicaParams,
    StepBatch,
    apply_load_scales,
    as_load_batch,
    register_engine,
    reject_async_only,
    reject_network_only,
    reject_sharded_only,
    resolve_arrival_models,
    resolve_arrival_rngs,
    resolve_record_fields,
    resolve_replica_params,
    resolve_rounding_rngs,
    resolve_tile_size,
    uniform_plane_value,
)

__all__ = ["BatchedVectorEngine"]

logger = logging.getLogger(__name__)

#: Fields whose per-round computation needs the full transient/traffic pass.
_INFO_FIELDS = ("min_transient", "round_traffic")


def _tiles(total: int, tile: int) -> List[tuple]:
    """Half-open ``[a, b)`` ranges covering ``0..total`` in ``tile`` steps."""
    return [(a, min(a + tile, total)) for a in range(0, max(total, 0), tile)]


def _token_uniforms(
    rngs: List[np.random.Generator], tok_slot: np.ndarray, B: int, dtype
) -> np.ndarray:
    """Per-token uniforms, each drawn from its replica's own stream.

    ``tok_slot`` indexes node-major flattened ``(rows, B)`` sender slots,
    so the tokens of replica ``b`` appear in ascending node order; drawing
    replica ``b``'s uniforms from ``rngs[b]`` in exactly that order makes
    the consumption independent of the batch composition (other replicas
    never touch stream ``b``) *and* of the tile split (consecutive
    ``Generator.random`` calls continue one stream).
    """
    if B == 1:
        return rngs[0].random(tok_slot.size, dtype=dtype)
    cols = tok_slot % B
    order = np.argsort(cols, kind="stable")  # group by replica, node order kept
    counts = np.bincount(cols, minlength=B)
    target = np.empty(tok_slot.size, dtype=dtype)
    target[order] = np.concatenate(
        [rng.random(int(c), dtype=dtype) for rng, c in zip(rngs, counts)]
    )
    return target


def _tiled_mld(
    load: np.ndarray,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    edge_tiles: List[tuple],
    s1: np.ndarray,
    s2: np.ndarray,
) -> np.ndarray:
    """Max local load difference via per-edge-tile gathers.

    Bit-identical to ``max |E @ load|``: the CSR row for edge ``k`` computes
    ``(+1 * x_u) + (-1 * x_v)``, which IEEE arithmetic makes exactly the
    gathered subtraction, and max is tile-decomposable exactly.
    """
    mx = np.full(load.shape[1], -np.inf, dtype=load.dtype)
    for a, b in edge_tiles:
        k = b - a
        xu = np.take(load, edge_u[a:b], axis=0, out=s1[:k])
        xv = np.take(load, edge_v[a:b], axis=0, out=s2[:k])
        np.subtract(xu, xv, out=xu)
        np.abs(xu, out=xu)
        np.maximum(mx, xu.max(axis=0), out=mx)
    return mx


def _node_metrics(
    load: np.ndarray,
    targets: np.ndarray,
    fields,
    scratch: np.ndarray,
    node_tiles: Optional[List[tuple]],
) -> tuple:
    """Requested node-space record metrics plus the per-replica totals.

    ``node_tiles=None`` runs the dense whole-plane expressions (the exact
    op sequence the engine always used); otherwise the same reductions
    stream over node tiles with ``scratch`` bounded to ``(tile, B)``.
    Min/max reductions decompose over tiles exactly; sums accumulate per
    tile, which is exact whenever the summed values are integral (every
    discrete rounding) and accumulation-accurate for the continuous
    ``identity`` process.  Totals are always computed — they feed the
    conservation check — but stored only when requested.
    """
    n = load.shape[0]
    values: Dict[str, np.ndarray] = {}
    if node_tiles is None:
        dev = np.subtract(load, targets, out=scratch)
        if "max_minus_avg" in fields:
            values["max_minus_avg"] = dev.max(axis=0)
        if "min_minus_avg" in fields:
            values["min_minus_avg"] = dev.min(axis=0)
        if "potential_per_node" in fields:
            np.multiply(dev, dev, out=dev)
            values["potential_per_node"] = dev.sum(axis=0) / n
        if "min_load" in fields:
            values["min_load"] = load.min(axis=0)
        totals = load.sum(axis=0)
        if "total_load" in fields:
            values["total_load"] = totals
        return values, totals

    B = load.shape[1]
    dtype = load.dtype
    broadcast_targets = targets.shape[0] != n
    mx = np.full(B, -np.inf, dtype=dtype)
    mn = np.full(B, np.inf, dtype=dtype)
    pot = np.zeros(B, dtype=dtype)
    mload = np.full(B, np.inf, dtype=dtype)
    totals = np.zeros(B, dtype=dtype)
    want_dev = any(
        f in fields for f in ("max_minus_avg", "min_minus_avg", "potential_per_node")
    )
    for a, b in node_tiles:
        k = b - a
        tile_load = load[a:b]
        if want_dev:
            t = targets if broadcast_targets else targets[a:b]
            dev = np.subtract(tile_load, t, out=scratch[:k])
            if "max_minus_avg" in fields:
                np.maximum(mx, dev.max(axis=0), out=mx)
            if "min_minus_avg" in fields:
                np.minimum(mn, dev.min(axis=0), out=mn)
            if "potential_per_node" in fields:
                np.multiply(dev, dev, out=dev)
                pot += dev.sum(axis=0)
        if "min_load" in fields:
            np.minimum(mload, tile_load.min(axis=0), out=mload)
        totals += tile_load.sum(axis=0)
    if "max_minus_avg" in fields:
        values["max_minus_avg"] = mx
    if "min_minus_avg" in fields:
        values["min_minus_avg"] = mn
    if "potential_per_node" in fields:
        values["potential_per_node"] = pot / n
    if "min_load" in fields:
        values["min_load"] = mload
    if "total_load" in fields:
        values["total_load"] = totals
    return values, totals

_FRAC_TOL = 1e-9  # matches repro.core.rounding

try:  # pragma: no cover - exercised implicitly by every batched run
    from scipy.sparse import _sparsetools as _st

    def _csr_dot(
        matrix: sp.csr_matrix,
        x: np.ndarray,
        out: np.ndarray,
        accumulate: bool = False,
    ) -> np.ndarray:
        """``out [+]= matrix @ x`` without allocating the result."""
        if not accumulate:
            out.fill(0.0)
        _st.csr_matvecs(
            matrix.shape[0],
            matrix.shape[1],
            x.shape[1],
            matrix.indptr,
            matrix.indices,
            matrix.data,
            x.ravel(),
            out.ravel(),
        )
        return out

except Exception:  # pragma: no cover - scipy internals moved

    def _csr_dot(
        matrix: sp.csr_matrix,
        x: np.ndarray,
        out: np.ndarray,
        accumulate: bool = False,
    ) -> np.ndarray:
        if accumulate:
            out += matrix @ x
        else:
            out[...] = matrix @ x
        return out


def _assemble_diffusion(
    topo: Topology, alphas: np.ndarray, speeds: np.ndarray, dtype,
    with_identity: bool,
) -> sp.csr_matrix:
    """Shared CSR assembly of the diffusion operator family.

    Off-diagonal ``+alpha_uv/s_v`` per neighbour; diagonal
    ``with_identity - sum(alpha_k)/s_u`` over incident edges — ``1`` for
    the folded diffusion matrix ``M``, ``0`` for the increment operator
    ``K = M - I``.
    """
    n, m = topo.n, topo.m_edges
    eu, ev = topo.edge_u, topo.edge_v
    alpha_edge = np.asarray(alphas, dtype=np.float64)
    if alpha_edge.ndim == 0:
        alpha_edge = np.full(m, float(alpha_edge))
    incident = np.bincount(eu, weights=alpha_edge, minlength=n) + np.bincount(
        ev, weights=alpha_edge, minlength=n
    )
    diag = (1.0 if with_identity else 0.0) - incident / speeds
    rows = np.concatenate([eu, ev, np.arange(n)])
    cols = np.concatenate([ev, eu, np.arange(n)])
    data = np.concatenate([alpha_edge / speeds[ev], alpha_edge / speeds[eu], diag])
    matrix = sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
    matrix.sort_indices()
    return matrix.astype(dtype)


def _diffusion_matrix(
    topo: Topology, alphas: np.ndarray, speeds: np.ndarray, dtype
) -> sp.csr_matrix:
    """The folded diffusion matrix ``M = I + D A E S^{-1}`` as one CSR —
    the whole identity-rounding round ``x <- x + D @ (A E S^{-1} x)`` is
    a single ``(n, B)`` matmul."""
    return _assemble_diffusion(topo, alphas, speeds, dtype, with_identity=True)


def _gradient_matrix(
    topo: Topology, alphas: np.ndarray, speeds: np.ndarray, dtype
) -> sp.csr_matrix:
    """The balancing increment operator ``K = D A E S^{-1}`` as one CSR.

    ``K x`` is the per-round load *delta* of the continuous process
    (``M = I + K``), which is what lets per-replica alpha scales blend
    ``x + c_b * (K x)`` with a single shared matmul instead of one folded
    diffusion matrix per replica.
    """
    return _assemble_diffusion(topo, alphas, speeds, dtype, with_identity=False)


class _FastRecorder:
    """Record storage of a closed-form fast-path run.

    Owns the tile-aware metric reductions (no edge-space state exists on
    the fast path, so the local-difference metric gathers endpoint loads in
    bounded edge chunks), the table/summary storage, the conservation
    check, and the final :class:`RecordBatch`.
    """

    #: edge-gather chunk when the run is not node-tiled (bounds the mld
    #: scratch without affecting results — gathers tile exactly)
    EDGE_CHUNK = 1 << 16

    def __init__(self, topo, config, x0, speeds, dtype):
        n, B = x0.shape
        self.topo = topo
        self.config = config
        self.n_replicas = B
        self.dtype = dtype
        self.fields = resolve_record_fields(config.record_fields)
        self.tile = resolve_tile_size(config, n, B, np.dtype(dtype).itemsize)
        self.node_tiles = _tiles(n, self.tile) if self.tile else None
        totals = x0.sum(axis=0)
        speeds_col = speeds[:, None].astype(dtype)
        if config.targets is not None:
            self.targets = np.asarray(config.targets, dtype=dtype)[:, None]
        elif np.all(speeds == speeds[0]):
            self.targets = (
                (totals[None, :] * speeds_col[:1]) / speeds.sum()
            ).astype(dtype, copy=False)
        else:
            self.targets = (
                (totals[None, :] * speeds_col) / speeds.sum()
            ).astype(dtype, copy=False)
        self.totals0 = totals.copy()
        self.conserve_tol = 1e-6 if dtype == np.float64 else 1e-4
        scratch_rows = self.tile if self.tile else n
        self.scratch = np.empty((scratch_rows, B), dtype=dtype)
        if "max_local_diff" in self.fields and topo.m_edges:
            chunk = self.tile if self.tile else min(topo.m_edges, self.EDGE_CHUNK)
            self.edge_tiles = _tiles(topo.m_edges, chunk)
            self.es1 = np.empty((chunk, B), dtype=dtype)
            self.es2 = np.empty((chunk, B), dtype=dtype)
        self.scheme_code = 1 if config.scheme == "sos" else 0
        self.stats: Optional[StreamingStats] = None
        if config.record_mode == "summary":
            self.stats = StreamingStats(self.fields, B)
        else:
            capacity = config.rounds // config.record_every + 2
            self.rec_round = np.empty(capacity, dtype=np.int64)
            self.rec_cols: Dict[str, np.ndarray] = {}
            for name in FLOAT_FIELDS:
                col = np.empty((capacity, B))
                if name not in self.fields:
                    col.fill(np.nan)
                self.rec_cols[name] = col
        self.rec_count = 0
        self.loads_history: Optional[List[np.ndarray]] = (
            [] if config.keep_loads else None
        )

    def record(self, round_index: int, x: np.ndarray) -> None:
        values, totals = _node_metrics(
            x, self.targets, self.fields, self.scratch, self.node_tiles
        )
        if "max_local_diff" in self.fields:
            if self.topo.m_edges:
                values["max_local_diff"] = _tiled_mld(
                    x, self.topo.edge_u, self.topo.edge_v, self.edge_tiles,
                    self.es1, self.es2,
                )
            else:
                values["max_local_diff"] = np.zeros(self.n_replicas)
        if self.stats is not None:
            self.stats.update(round_index, values)
        else:
            i = self.rec_count
            for name, value in values.items():
                self.rec_cols[name][i] = value
            self.rec_round[i] = round_index
        self.rec_count += 1
        if self.loads_history is not None:
            self.loads_history.append(x.T.copy())
        drift = np.abs(totals - self.totals0)
        bad = drift > self.conserve_tol * np.maximum(1.0, np.abs(self.totals0))
        if bad.any():
            b = int(np.argmax(bad))
            raise SimulationError(
                f"load not conserved in replica {b} by round {round_index}: "
                f"{self.totals0[b]} -> {totals[b]}"
            )

    def batch(self, final_x: np.ndarray) -> RecordBatch:
        B = self.n_replicas
        final_flows = np.broadcast_to(
            np.zeros(self.topo.m_edges), (B, self.topo.m_edges)
        )
        common = dict(
            final_loads=final_x.T.astype(np.float64, copy=True),
            final_flows=final_flows,
            switched_at=np.full(B, -1, dtype=np.int64),
            loads_history=self.loads_history,
        )
        if self.stats is not None:
            return RecordBatch(
                summary_stats=self.stats,
                scheme_last=np.full(B, self.scheme_code, dtype=np.uint8),
                **common,
            )
        count = self.rec_count
        return RecordBatch(
            round_index=self.rec_round[:count].copy(),
            scheme_codes=np.full((count, B), self.scheme_code, dtype=np.uint8),
            columns={k: v[:count].copy() for k, v in self.rec_cols.items()},
            **common,
        )


@dataclass
class _SwitchState:
    """Vectorised hybrid-switch policy state."""

    kind: Optional[str] = None
    args: tuple = ()
    phi_hist: Optional[np.ndarray] = None  # (window, B) ring buffer
    phi_count: int = 0


class _BatchedHandle:
    """All state of one batched run: replicas, operators, scratch buffers."""

    def __init__(
        self,
        topo: Topology,
        config: EngineConfig,
        loads: np.ndarray,
        params: Optional[ResolvedReplicaParams] = None,
        churn_plan=None,
        op_cache: Optional[Dict] = None,
    ):
        n, m = topo.n, topo.m_edges
        # Pool workers hand in a per-topology operator cache so repeated
        # calls on the same graph skip the CSR/adjacency builds.  The
        # cached operators are never written to after construction; churn
        # runs rebuild operators mid-run and skip the cache entirely.
        if churn_plan is not None:
            op_cache = None
        B = loads.shape[0]
        self.topo = topo
        self.config = config
        self.params = params
        self.n_replicas = B
        self.round_index = 0
        dtype = np.float32 if config.precision == "float32" else np.float64
        self.dtype = dtype
        #: churn run state: the resolved plan, the live-node mask of the
        #: current topology segment, and the last round whose patch lookup
        #: already happened (patches apply before that round's arrivals).
        self.churn_plan = churn_plan
        if churn_plan is not None:
            self.churn_active = churn_plan.active0
            self.churn_active_idx = churn_plan.active0_idx
            self.churn_patched_through = 0
        #: fuzz tolerance for the excess-token machinery, precision-scaled
        self.frac_tol = _FRAC_TOL if dtype == np.float64 else 1e-5
        #: relative conservation tolerance (float32 accumulates more drift)
        self.conserve_tol = 1e-6 if dtype == np.float64 else 1e-4
        #: compiled kernel provider of the discrete hot loop (None = the
        #: numpy tier); warmed here so JIT/compile cost lands in prepare(),
        #: never inside a measured round.  Churn runs pin the numpy tier:
        #: the compiled providers bake the edge arrays in at warm time.
        if churn_plan is not None:
            if config.kernel == "auto" and resolve_kernel(config, m) is not None:
                logger.info(
                    "churn: compiled kernel tier cannot patch its edge "
                    "buffers mid-run; using the numpy tier"
                )
            self.kernel = None
        else:
            self.kernel = resolve_kernel(config, m)
        if self.kernel is not None:
            ensure_warm(self.kernel)
        #: static record columns actually computed (dynamic runs ignore this)
        self.fields = resolve_record_fields(config.record_fields)
        #: whether any record round needs the transient/traffic pass
        self.info_fields = any(f in self.fields for f in _INFO_FIELDS)
        #: node-tile width of the streaming kernels (None = dense scratch)
        excess_planes = (
            int(topo.degrees.max()) if config.rounding == "randomized-excess" and m
            else 0
        )
        self.tile = resolve_tile_size(
            config, n, B, np.dtype(dtype).itemsize, planes=excess_planes
        )
        self.node_tiles = _tiles(n, self.tile) if self.tile else []
        self.edge_tiles = _tiles(m, self.tile) if self.tile else []
        # Unconditional copy: for B=1 a transposed (n, 1) view is still
        # flagged contiguous, and the engine must never mutate caller data.
        self.load = np.asarray(loads.T, dtype=dtype).copy(order="C")  # (n, B)
        self.flows = np.zeros((m, B), dtype=dtype)

        # -- substrate -------------------------------------------------
        speeds = validate_speeds(
            config.speeds if config.speeds is not None else uniform_speeds(n), n
        )
        self.speeds_col = speeds[:, None].astype(dtype)
        self.uniform_speeds = bool(np.all(speeds == 1.0))
        alphas = resolve_alphas(config.alphas, topo, speeds)
        if m == 0 or np.all(alphas == alphas[0]):
            self.alphas = float(alphas[0]) if m else 1.0
        else:
            self.alphas = alphas[:, None].astype(dtype)
        # -- per-replica parameter planes --------------------------------
        alpha_scales = params.alpha_scales if params is not None else None
        betas = params.betas if params is not None else None
        switch_rounds = params.switch_rounds if params is not None else None
        if alpha_scales is not None and m:
            # Fold the per-replica scale into an alpha row/plane: the float64
            # product ``alpha_k * scale_b`` is exactly what the reference
            # engine's per-replica scheme computes, and multiplication
            # commutes bit for bit, so ``diff * (alpha * scale)`` matches
            # ``(alpha * scale) * diff`` replica for replica.
            if np.isscalar(self.alphas):
                self.alphas = (self.alphas * alpha_scales[None, :]).astype(dtype)
            else:
                self.alphas = (alphas[:, None] * alpha_scales[None, :]).astype(
                    dtype
                )
        self.scalar_beta = (
            config.switch is None
            and switch_rounds is None
            and (betas is None or bool(np.all(betas == betas[0])))
        )
        if betas is not None:
            self.beta_row = betas[None, :].astype(dtype).copy()
        else:
            self.beta_row = np.full(
                (1, B), config.beta if config.scheme == "sos" else 1.0,
                dtype=dtype,
            )
        self.sos_active = np.full(B, config.scheme == "sos")
        self.switched_at = np.full(B, -1, dtype=np.int64)
        self.last_switched = np.zeros(B, dtype=bool)

        # -- CSR operators ---------------------------------------------
        eu, ev = topo.edge_u, topo.edge_v
        csr_key = ("csr", np.dtype(dtype).char)
        cached_csr = op_cache.get(csr_key) if op_cache is not None else None
        if cached_csr is not None:
            self.E, self.D, self.W = cached_csr
        else:
            ar = np.arange(m)
            # E: per-edge difference, entries ordered (+1 @ eu, -1 @ ev).
            self.E = sp.csr_matrix(
                (
                    np.tile(np.array([1.0, -1.0], dtype=dtype), m),
                    np.column_stack([eu, ev]).ravel() if m else np.empty(0, np.int64),
                    2 * np.arange(m + 1),
                ),
                shape=(m, n),
            )
            inc_rows = np.concatenate([eu, ev])
            inc_cols = np.concatenate([ar, ar])
            self.D = sp.coo_matrix(
                (
                    np.concatenate([-np.ones(m), np.ones(m)]).astype(dtype),
                    (inc_rows, inc_cols),
                ),
                shape=(n, m),
            ).tocsr()
            self.W = sp.coo_matrix(
                (np.ones(2 * m, dtype=dtype), (inc_rows, inc_cols)), shape=(n, m)
            ).tocsr()
            if op_cache is not None:
                op_cache[csr_key] = (self.E, self.D, self.W)
        if self.kernel is not None:
            # Flat buffers of the compiled provider: edge endpoints, the
            # incidence CSR (captured before tiling drops self.D — the
            # compiled apply replays csr_matvecs' per-row accumulation
            # order), per-node speeds, and the dtype-pinned constants
            # [0, 1, frac_tol] so no float literal enters the kernels at a
            # foreign precision.
            self.kern_eu = np.ascontiguousarray(eu, dtype=np.int32)
            self.kern_ev = np.ascontiguousarray(ev, dtype=np.int32)
            self.inc_indptr = np.ascontiguousarray(self.D.indptr, dtype=np.int64)
            self.inc_edges = np.ascontiguousarray(self.D.indices, dtype=np.int32)
            self.inc_signs = np.ascontiguousarray(self.D.data)
            self.kern_speeds = (
                None if self.uniform_speeds
                else np.ascontiguousarray(self.speeds_col.ravel())
            )
            self.kern_consts = np.array([0.0, 1.0, self.frac_tol], dtype=dtype)
            self.kern_beta = np.ones(B, dtype=dtype)
            self.kern_bm1 = np.zeros(B, dtype=dtype)
            if np.isscalar(self.alphas):
                self.kern_alpha = (np.full(1, self.alphas, dtype=dtype), 0, 0)
            else:
                # alphas is (m, 1), (1, B) or (m, B); element strides mirror
                # the numpy broadcast: alpha[e, b] = flat[e * ar + b * ac].
                rows, cols = self.alphas.shape
                flat = np.ascontiguousarray(self.alphas, dtype=dtype).ravel()
                self.kern_alpha = (
                    flat, cols if rows > 1 else 0, 1 if cols > 1 else 0
                )
            # Unbiased-edge pre-draw plane, replica-major so each stream
            # fills one contiguous row (rng.random(out=...) — no strided
            # copy); the kernels index it as uni[b * m + e].
            self.kern_uni = (
                np.empty((B, m), dtype=dtype)
                if config.rounding == "unbiased-edge"
                else None
            )
        if self.tile:
            # Row blocks of the incidence operators: CSR row slicing keeps
            # each row's accumulation untouched, so the tiled apply/transient
            # loops reproduce the dense matvecs bit for bit.
            self.D_tiles = [self.D[a:b] for a, b in self.node_tiles]
            self.W_tiles = [self.W[a:b] for a, b in self.node_tiles]
            self.D = self.W = None  # the full operators are never used tiled
        # Fused gradient operators with the edge weights folded into the CSR
        # data — a float-reassociation shortcut, used only where bitwise
        # fidelity to the reference is not part of the contract (statistical
        # roundings, the continuous identity process, and float32 mode).
        self.fused_sched = m > 0 and alpha_scales is None and (
            dtype == np.float32
            or config.rounding in ("randomized-excess", "unbiased-edge", "identity")
        )
        if self.fused_sched:
            alpha_edge = (
                np.full(m, self.alphas)
                if np.isscalar(self.alphas)
                else np.asarray(alphas, dtype=np.float64)
            )
            beta_scale = float(self.beta_row[0, 0])

            def _scaled_e(scale):
                data = np.repeat(alpha_edge * scale, 2).astype(dtype)
                data[1::2] *= -1.0
                return sp.csr_matrix(
                    (data, self.E.indices.copy(), self.E.indptr.copy()),
                    shape=(m, n),
                )

            self.E_alpha = _scaled_e(1.0)
            self.E_alpha_beta = _scaled_e(beta_scale)

        # -- padded adjacency for the excess-token machinery ------------
        if config.rounding == "randomized-excess" and m:
            cached_adj = op_cache.get("adj") if op_cache is not None else None
            if cached_adj is not None:
                dmax, adj_edges, slot_dirs = cached_adj
            else:
                dmax = int(topo.degrees.max())
                adj_edges = np.full((n, dmax), m, dtype=np.int64)
                slot_dirs = np.zeros((n, dmax))
                idx_node = np.repeat(np.arange(n), topo.degrees)
                pos_in_row = np.arange(idx_node.size) - topo.adj_indptr[idx_node]
                adj_edges[idx_node, pos_in_row] = topo.adj_edge_ids
                slot_dirs[idx_node, pos_in_row] = np.where(
                    idx_node < topo.adj_indices, 1.0, -1.0
                )
                if op_cache is not None:
                    op_cache["adj"] = (dmax, adj_edges, slot_dirs)
            self.dmax = dmax
            self.adj_edges_flat = adj_edges.ravel()
            if self.kernel is not None:
                # Compiled excess path: int8 slot signs plus the token-count
                # and uniform-offset buffers replace the numpy tier's P/N
                # blocks and cumulative planes — the dominant scratch
                # allocation of large-n discrete runs disappears entirely.
                self.kern_adj_edges = self.adj_edges_flat.astype(np.int32)
                self.kern_adj_signs = slot_dirs.ravel().astype(np.int8)
                self.kern_counts = np.empty((n, B), dtype=np.int64)
                self.kern_totals = np.empty(B, dtype=np.int64)
                self.kern_uoff = np.empty(B + 1, dtype=np.int64)
                self.kern_uni_flat = None  # grown on demand, reused across rounds
            else:
                self.slot_dirs_flat = slot_dirs.ravel()
                cached_take = (
                    op_cache.get("slot_take") if op_cache is not None else None
                )
                if cached_take is not None:
                    self.slot_take = cached_take
                else:
                    # Outgoing-fraction gather indices per slot plane: a slot
                    # routes to the P block (positive fsg) when the node is the
                    # edge's u endpoint, to the N block (negative fsg) when it
                    # is v, and to the always-zero padding row otherwise.
                    self.slot_take = [
                        np.where(
                            slot_dirs[:, j] > 0,
                            adj_edges[:, j],
                            np.where(
                                slot_dirs[:, j] < 0, adj_edges[:, j] + (m + 1), m
                            ),
                        )
                        for j in range(dmax)
                    ]
                    if op_cache is not None:
                        op_cache["slot_take"] = self.slot_take
                # P/N blocks: rows [0, m) positive parts, row m zero padding,
                # rows [m+1, 2m+1) negative parts, row 2m+1 zero padding.
                self.pn = np.zeros((2 * (m + 1), B), dtype=dtype)
                # cumulative outgoing fractions per slot plane: (dmax, n, B)
                # dense, or lazily (dmax, tile, B) when the run is tiled —
                # the dominant scratch allocation of large-n discrete runs.
                plane_rows = self.tile if self.tile else n
                self.cum_planes = np.empty((dmax, plane_rows, B), dtype=dtype)
                self.slot_arange = np.arange(plane_rows * B)

        # -- targets ----------------------------------------------------
        if config.targets is not None:
            self.targets = np.asarray(config.targets, dtype=dtype)[:, None]
        elif self.uniform_speeds:
            # One shared row: with uniform speeds every node's target is the
            # replica average, and ``totals * s / sum(s)`` is bitwise the
            # same number for every node — no need for an (n, B) plane.
            totals = self.load.sum(axis=0)  # (B,)
            self.targets = (
                (totals[None, :] * self.speeds_col[:1]) / speeds.sum()
            ).astype(dtype, copy=False)
        else:
            totals = self.load.sum(axis=0)  # (B,)
            self.targets = (
                (totals[None, :] * self.speeds_col) / speeds.sum()
            ).astype(dtype, copy=False)
        self.totals0 = self.load.sum(axis=0)

        # -- switch policy ----------------------------------------------
        self.switch = _SwitchState()
        if config.switch is not None:
            kind, *args = config.switch
            self.switch = _SwitchState(kind=kind, args=tuple(args))
            if kind == "plateau":
                window = int(args[0]) if args else 50
                self.switch.phi_hist = np.zeros((window, B))
        elif switch_rounds is not None:
            # Per-replica fixed switch rounds: one column vector joining the
            # beta row — replica b compares its own round threshold (< 0
            # means "never"), exactly a per-column FixedRoundSwitch.
            self.switch = _SwitchState(kind="fixed-vec", args=(switch_rounds,))

        # -- record storage (static runs only: dynamic runs record into
        #    the dyn_* columns below and never touch these) ---------------
        self.rec_stats: Optional[StreamingStats] = None
        if config.arrivals is None:
            if config.record_mode == "summary":
                self.rec_stats = StreamingStats(self.fields, B)
            else:
                capacity = config.rounds // config.record_every + 2
                self.rec_round = np.empty(capacity, dtype=np.int64)
                self.rec_scheme = np.empty((capacity, B), dtype=np.uint8)
                self.rec_cols: Dict[str, np.ndarray] = {}
                for name in FLOAT_FIELDS:
                    col = np.empty((capacity, B))
                    if name not in self.fields:
                        col.fill(np.nan)  # excluded columns stay NaN
                    self.rec_cols[name] = col
        self.rec_count = 0
        self.last_recorded_round = -1
        self.loads_history: Optional[List[np.ndarray]] = (
            [] if config.keep_loads else None
        )

        # -- scratch buffers --------------------------------------------
        # Edge-space scratch is inherent state of the discrete process (the
        # flow history and per-edge actuals); node-space scratch is dense
        # (nb1..nb4) or a bounded (tile, B) bank in tiled mode.
        self.mb1 = np.empty((m, B), dtype=dtype)
        self.mb2 = np.empty((m, B), dtype=dtype)
        self.mb3 = np.empty((m, B), dtype=dtype)
        self.act = np.empty((m, B), dtype=dtype)
        if self.tile:
            self.ts1 = np.empty((self.tile, B), dtype=dtype)
            self.ts2 = np.empty((self.tile, B), dtype=dtype)
            self.ts3 = np.empty((self.tile, B), dtype=dtype)
            # Full-width node scratch only where a kernel is not tileable:
            # the speed-normalised gradient input and the plateau policy.
            need_nb1 = not self.uniform_speeds or (
                config.switch is not None and config.switch[0] == "plateau"
            )
            self.nb1 = np.empty((n, B), dtype=dtype) if need_nb1 else None
            self.nb2 = self.nb3 = self.nb4 = None
        else:
            self.nb1 = np.empty((n, B), dtype=dtype)
            self.nb2 = np.empty((n, B), dtype=dtype)
            self.nb3 = np.empty((n, B), dtype=dtype)
            self.nb4 = np.empty((n, B), dtype=dtype)
        # One spawned rounding stream per replica, keyed by the replica's
        # identity (config.replica_keys, default its global batch index) —
        # trajectories never depend on the batch composition.
        self.rngs = resolve_rounding_rngs(config, B)

        self.last_min_transient = (
            self.load[churn_plan.active0_idx].min(axis=0)
            if churn_plan is not None
            else self.load.min(axis=0)
        )
        self.last_traffic = np.zeros(B)
        self.last_mld: Optional[np.ndarray] = None

        # -- dynamic workload (per-round arrival hook) -------------------
        self.arrival_models = resolve_arrival_models(config.arrivals, B)
        self.dyn_stats: Optional[StreamingStats] = None
        #: per-replica arrival-rate scale row ((1, B), or None): multiplies
        #: the sampled delta plane before clamping — the same elementwise
        #: product the per-replica backends apply via ScaledArrivals.
        self.arrival_scale_row: Optional[np.ndarray] = None
        if params is not None and params.arrival_scales is not None:
            self.arrival_scale_row = params.arrival_scales[None, :].astype(dtype)
        if self.arrival_models is not None:
            if config.arrival_sampling == "batch":
                from ..core.dynamic import batch_arrival_stream

                if any(m_ is not self.arrival_models[0] for m_ in self.arrival_models):
                    raise ConfigurationError(
                        "arrival_sampling='batch' needs one shared arrival "
                        "model (per-replica model sequences sample per "
                        "replica by definition)"
                    )
                if config.arrival_seeds is not None:
                    raise ConfigurationError(
                        "arrival_seeds pin per-replica streams, which "
                        "arrival_sampling='batch' replaces with one shared "
                        "batch stream"
                    )
                self.arrival_rngs = None
                self.arrival_batch_rng = batch_arrival_stream(config.seed)
            else:
                self.arrival_rngs = resolve_arrival_rngs(config, B)
                self.arrival_batch_rng = None
            self.arrivals_applied = False
            self.last_arrival: Optional[ArrivalBatch] = None
            #: exact expected totals, advanced by every arrival application
            #: (token counts are integral, so float64 sums stay exact)
            self.expected_totals = self.load.sum(axis=0, dtype=np.float64)
            if config.record_mode == "summary":
                self.dyn_stats = StreamingStats(DYNAMIC_FLOAT_FIELDS, B)
            else:
                self.dyn_round = np.empty(config.rounds, dtype=np.int64)
                self.dyn_cols: Dict[str, np.ndarray] = {
                    name: np.empty((config.rounds, B))
                    for name in DYNAMIC_FLOAT_FIELDS
                }
            self.dyn_count = 0
            # arrival scratch: the sampled deltas stay a full (n, B) plane
            # (the model API fills whole columns); the clamping scratch is
            # the tile bank in tiled mode, dense planes otherwise.
            self.arr_deltas = np.empty((n, B), dtype=dtype)
            if not self.tile:
                self.arr_pos = np.empty((n, B), dtype=dtype)
                self.arr_want = np.empty((n, B), dtype=dtype)
                self.arr_actual = np.empty((n, B), dtype=dtype)


@register_engine
class BatchedVectorEngine(Engine):
    """All replicas at once through CSR edge-wise numpy kernels."""

    name = "batched"

    #: Optional per-topology operator cache shared across prepare() calls.
    #: Pool workers set this (an ordinary dict) on their engine instance so
    #: repeated calls on the same graph reuse the CSR operators instead of
    #: rebuilding them; ``None`` (the default) disables caching entirely.
    operator_cache: Optional[Dict] = None

    def prepare(self, topo, config, initial_loads) -> _BatchedHandle:
        config.validate()
        reject_sharded_only(config, "batched")
        reject_async_only(config, "batched")
        reject_network_only(config, "batched")
        if config.scheme == "sos" and not 0.0 < config.beta < 2.0:
            raise SchemeError(f"beta must be in (0, 2), got {config.beta}")
        make_rounding(config.rounding)  # validate the key early
        if config.fast_path in ("matmul", "spectral"):
            # The closed-form tiers live in the fused run() loop; a forced
            # fast path through the step-by-step protocol would silently run
            # edge-wise, so refuse it here (fast_path="auto" steps edge-wise
            # by design).
            raise ConfigurationError(
                f"fast_path={config.fast_path!r} runs through engine.run(); "
                "the prepare()/step() protocol is always edge-wise"
            )
        loads = as_load_batch(initial_loads, topo.n)
        params = resolve_replica_params(config.replica_params, loads.shape[0])
        loads = apply_load_scales(loads, params)
        plan = resolve_churn(topo, config)
        if plan is not None:
            if config.kernel not in ("auto", "numpy"):
                raise ConfigurationError(
                    f"kernel={config.kernel!r} does not support churn (the "
                    "compiled providers bake the edge arrays in at warm "
                    "time); use kernel='auto' or 'numpy'"
                )
            loads_univ = np.zeros((loads.shape[0], plan.n_univ))
            loads_univ[:, : topo.n] = loads
            h = _BatchedHandle(
                plan.topo0, config, loads_univ, None, churn_plan=plan
            )
        else:
            h = _BatchedHandle(
                topo, config, loads, params, op_cache=self.operator_cache
            )
        if h.arrival_models is None:
            self._record_current(h)
        return h

    # ==================================================================
    # topology churn
    # ==================================================================
    def _maybe_churn(self, h: _BatchedHandle) -> None:
        """Apply the pending topology patch for the upcoming round, once.

        Mirrors the reference engine exactly: handoffs first (still on the
        outgoing topology's node set), then the flow remap (new edges start
        with zero flow memory), then the operator rebuild against the new
        live topology.  Idempotent per round — ``arrive()`` and the
        advance loop may both call it.
        """
        plan = h.churn_plan
        if plan is None:
            return
        r = h.round_index + 1
        if h.churn_patched_through >= r:
            return
        h.churn_patched_through = r
        patch = plan.patch_at(r)
        if patch is None:
            return
        apply_handoffs(h.load, patch.handoffs)
        h.flows = remap_flows(h.flows, patch.edge_map)
        h.churn_active = patch.active
        h.churn_active_idx = patch.active_idx
        self._rebuild_churn_ops(h, patch.topo)

    def _rebuild_churn_ops(self, h: _BatchedHandle, topo: Topology) -> None:
        """Rebuild the edge-space operators and scratch for a new segment.

        Churn runs are pinned to the dense float64 numpy tier (no compiled
        kernel, no tiling, uniform speeds, no replica planes — enforced by
        ``EngineConfig.validate``), so only the topology-shaped state needs
        rebuilding; the node-space planes keep their fixed universe size.
        """
        config = h.config
        n, m = topo.n, topo.m_edges
        B = h.n_replicas
        dtype = h.dtype
        h.topo = topo
        speeds = uniform_speeds(n)
        alphas = resolve_alphas(config.alphas, topo, speeds)
        if m == 0 or np.all(alphas == alphas[0]):
            h.alphas = float(alphas[0]) if m else 1.0
        else:
            h.alphas = alphas[:, None].astype(dtype)
        eu, ev = topo.edge_u, topo.edge_v
        ar = np.arange(m)
        h.E = sp.csr_matrix(
            (
                np.tile(np.array([1.0, -1.0], dtype=dtype), m),
                np.column_stack([eu, ev]).ravel() if m else np.empty(0, np.int64),
                2 * np.arange(m + 1),
            ),
            shape=(m, n),
        )
        inc_rows = np.concatenate([eu, ev])
        inc_cols = np.concatenate([ar, ar])
        h.D = sp.coo_matrix(
            (
                np.concatenate([-np.ones(m), np.ones(m)]).astype(dtype),
                (inc_rows, inc_cols),
            ),
            shape=(n, m),
        ).tocsr()
        h.W = sp.coo_matrix(
            (np.ones(2 * m, dtype=dtype), (inc_rows, inc_cols)), shape=(n, m)
        ).tocsr()
        h.fused_sched = m > 0 and config.rounding in (
            "randomized-excess", "unbiased-edge", "identity"
        )
        if h.fused_sched:
            alpha_edge = (
                np.full(m, h.alphas)
                if np.isscalar(h.alphas)
                else np.asarray(alphas, dtype=np.float64)
            )
            beta_scale = float(h.beta_row[0, 0])

            def _scaled_e(scale):
                data = np.repeat(alpha_edge * scale, 2).astype(dtype)
                data[1::2] *= -1.0
                return sp.csr_matrix(
                    (data, h.E.indices.copy(), h.E.indptr.copy()),
                    shape=(m, n),
                )

            h.E_alpha = _scaled_e(1.0)
            h.E_alpha_beta = _scaled_e(beta_scale)
        if config.rounding == "randomized-excess" and m:
            dmax = int(topo.degrees.max())
            adj_edges = np.full((n, dmax), m, dtype=np.int64)
            slot_dirs = np.zeros((n, dmax))
            idx_node = np.repeat(np.arange(n), topo.degrees)
            pos_in_row = np.arange(idx_node.size) - topo.adj_indptr[idx_node]
            adj_edges[idx_node, pos_in_row] = topo.adj_edge_ids
            slot_dirs[idx_node, pos_in_row] = np.where(
                idx_node < topo.adj_indices, 1.0, -1.0
            )
            h.dmax = dmax
            h.adj_edges_flat = adj_edges.ravel()
            h.slot_dirs_flat = slot_dirs.ravel()
            h.slot_take = [
                np.where(
                    slot_dirs[:, j] > 0,
                    adj_edges[:, j],
                    np.where(
                        slot_dirs[:, j] < 0, adj_edges[:, j] + (m + 1), m
                    ),
                )
                for j in range(dmax)
            ]
            h.pn = np.zeros((2 * (m + 1), B), dtype=dtype)
            h.cum_planes = np.empty((dmax, n, B), dtype=dtype)
            h.slot_arange = np.arange(n * B)
        h.mb1 = np.empty((m, B), dtype=dtype)
        h.mb2 = np.empty((m, B), dtype=dtype)
        h.mb3 = np.empty((m, B), dtype=dtype)
        h.act = np.empty((m, B), dtype=dtype)

    # ==================================================================
    # per-round kernel
    # ==================================================================
    def _advance(self, h: _BatchedHandle, want_info: bool) -> None:
        """One synchronous round for every replica.

        ``want_info`` additionally computes the round's per-replica transient
        minima and traffic (needed on record rounds, the final round, and
        protocol-level ``step()`` calls); the fused ensemble loop skips them
        elsewhere, exactly like the classic simulator discards unrecorded
        step info.
        """
        config = h.config
        self._maybe_churn(h)
        load, flows = h.load, h.flows

        # -- dynamic arrivals (auto-applied when the hook wasn't called) ---
        if h.arrival_models is not None and not h.arrivals_applied:
            self._apply_arrivals(h)

        # -- scheduled flows (Yhat) + rounding -----------------------------
        if h.kernel is not None:
            # Compiled tier: one fused pass does schedule + rounding without
            # materialising the intermediate (m, B) planes; bit-identical to
            # the numpy branches below (see _kernel_round).
            act = self._kernel_round(h)
        else:
            if h.uniform_speeds:
                norm = load
            else:
                norm = np.divide(load, h.speeds_col, out=h.nb1)
            if h.fused_sched and (h.round_index == 0 or h.scalar_beta):
                # Fused form: scale flows in place, then accumulate the
                # weighted gradient straight out of the CSR operator.
                # Bitwise this reorders the float products, which only
                # statistical roundings may do; round 0 uses the
                # plain-alpha operator (FOS opener).
                if h.round_index == 0:
                    _csr_dot(h.E_alpha, norm, flows, accumulate=True)
                else:
                    beta = float(h.beta_row[0, 0])
                    np.multiply(flows, beta - 1.0, out=flows)
                    _csr_dot(h.E_alpha_beta, norm, flows, accumulate=True)
                sched = flows
            else:
                diff = _csr_dot(h.E, norm, h.mb1)  # x_u/s_u - x_v/s_v per edge
                np.multiply(diff, h.alphas, out=diff)  # gradient
                if h.round_index == 0:
                    # Both schemes open with a plain FOS round.
                    sched = diff
                elif h.scalar_beta:
                    beta = float(h.beta_row[0, 0])
                    np.multiply(diff, beta, out=diff)
                    np.multiply(flows, beta - 1.0, out=flows)
                    np.add(flows, diff, out=flows)
                    sched = flows
                else:
                    np.multiply(diff, h.beta_row, out=diff)
                    np.multiply(flows, h.beta_row - 1.0, out=flows)
                    np.add(flows, diff, out=flows)
                    sched = flows

            # -- rounding --------------------------------------------------
            act = self._round_flows(h, sched)

        # -- step info (transients / traffic), then apply ------------------
        if want_info:
            if h.tile:
                absf = np.abs(act, out=h.mb2)
                h.last_traffic = absf.sum(axis=0)
                mins = np.full(h.n_replicas, np.inf, dtype=h.dtype)
                for (a, b), d_t, w_t in zip(h.node_tiles, h.D_tiles, h.W_tiles):
                    k = b - a
                    delta = _csr_dot(d_t, act, h.ts1[:k])
                    outgoing = _csr_dot(w_t, absf, h.ts2[:k])
                    np.subtract(outgoing, delta, out=outgoing)
                    np.multiply(outgoing, 0.5, out=outgoing)
                    np.subtract(load[a:b], outgoing, out=outgoing)  # transient
                    np.minimum(mins, outgoing.min(axis=0), out=mins)
                    np.add(load[a:b], delta, out=load[a:b])
                h.last_min_transient = mins
            else:
                delta = _csr_dot(h.D, act, h.nb2)
                absf = np.abs(act, out=h.mb2)
                outgoing = _csr_dot(h.W, absf, h.nb3)
                np.subtract(outgoing, delta, out=outgoing)
                np.multiply(outgoing, 0.5, out=outgoing)
                transient = np.subtract(load, outgoing, out=h.nb4)
                h.last_min_transient = (
                    transient[h.churn_active_idx].min(axis=0)
                    if h.churn_plan is not None
                    else transient.min(axis=0)
                )
                h.last_traffic = absf.sum(axis=0)
                np.add(load, delta, out=load)
        elif h.kernel is not None:
            # Compiled apply: the same per-row sequential accumulation as
            # csr_matvecs over D's CSR structure — bit-identical, without
            # scipy's per-call overhead.
            h.kernel.apply_flows(
                h.inc_indptr, h.inc_edges, h.inc_signs, act, load
            )
        elif h.tile:
            for (a, b), d_t in zip(h.node_tiles, h.D_tiles):
                _csr_dot(d_t, act, load[a:b], accumulate=True)
        else:
            _csr_dot(h.D, act, load, accumulate=True)
        h.round_index += 1
        if act is h.act:
            h.flows, h.act = h.act, h.flows
        # (identity rounding leaves act aliased to sched == flows: no swap)

        # -- record --------------------------------------------------------
        if h.arrival_models is not None:
            self._record_dynamic(h)
            h.arrivals_applied = False
        elif h.round_index % config.record_every == 0:
            self._record_current(h)

        # -- hybrid switch (checked after recording, like the simulator) ---
        if h.switch.kind is not None:
            self._check_switch(h)

    def _kernel_round(self, h: _BatchedHandle) -> np.ndarray:
        """One fused schedule + rounding pass through the compiled provider.

        Resolves the round's schedule mode and coefficient strides exactly
        like the numpy branches in :meth:`_advance` (fused-operator form,
        scalar/vector beta, the round-0 FOS opener), pre-draws any
        stochastic uniforms from the same per-replica streams in the same
        order, and hands flat buffers to the provider — bit-identical to
        the numpy tier by construction.  Reads ``h.flows`` without writing
        it; the actuals land in ``h.act`` and the caller's swap makes them
        the next round's flow state, exactly like the numpy path (whose
        in-place ``flows`` writes are discarded scratch after the swap).
        """
        kern = h.kernel
        B = h.n_replicas
        m = h.topo.m_edges
        rounding = ROUNDING_CODES[h.config.rounding]
        if h.fused_sched and (h.round_index == 0 or h.scalar_beta):
            # Fused-operator schedule: per-edge coefficients straight from
            # the interleaved E_alpha[_beta].data (+c at even slots), with
            # flows scaled by beta-1 (round 0: by 1 — the flows are +0.0,
            # matching the accumulate-into-zeros opener bit for bit).
            mode = 2
            if h.round_index == 0:
                alpha = h.E_alpha.data
                h.kern_bm1[0] = 1.0
            else:
                alpha = h.E_alpha_beta.data
                h.kern_bm1[0] = float(h.beta_row[0, 0]) - 1.0
            ar, ac, bs = 2, 0, 0
        else:
            alpha, ar, ac = h.kern_alpha
            if h.round_index == 0:
                mode, bs = 0, 0  # plain FOS opener: beta/bm1 unused
            elif h.scalar_beta:
                mode, bs = 1, 0
                beta = float(h.beta_row[0, 0])
                h.kern_beta[0] = beta
                h.kern_bm1[0] = beta - 1.0
            else:
                mode, bs = 1, 1
                np.copyto(h.kern_beta, h.beta_row[0])
                np.subtract(h.beta_row[0], 1.0, out=h.kern_bm1)
        uni = None
        fsg = None
        if rounding == 3:  # unbiased-edge: pre-draw the per-edge uniforms
            uni = h.kern_uni
            for b, rng in enumerate(h.rngs):
                rng.random(dtype=h.dtype, out=uni[b])
        elif rounding == 4:  # randomized-excess: fractional-part plane
            fsg = h.mb3
        kern.round_edges(
            h.kern_eu, h.kern_ev, h.load, h.kern_speeds, h.flows, h.act,
            fsg, uni, alpha, ar, ac, h.kern_beta, h.kern_bm1, bs,
            mode, rounding, h.kern_consts,
        )
        if rounding == 4:
            # Token budgets first, then exactly as many uniforms as there
            # are tokens, drawn replica-major / node-ascending from the
            # per-replica streams — the numpy tier's consumption order.
            kern.excess_counts(
                h.kern_adj_edges, h.kern_adj_signs, h.dmax, m, fsg,
                h.kern_counts, h.kern_totals, h.kern_consts,
            )
            per_replica = h.kern_totals
            h.kern_uoff[0] = 0
            np.cumsum(per_replica, out=h.kern_uoff[1:])
            total = int(h.kern_uoff[B])
            if total:
                # Persistent uniform buffer, streams drawn straight into
                # their slices (a zero-count draw consumes nothing, so the
                # stream order matches the numpy tier's token_uniforms).
                buf = h.kern_uni_flat
                if buf is None or buf.size < total:
                    buf = h.kern_uni_flat = np.empty(
                        total + total // 4 + 64, dtype=h.dtype
                    )
                uni_flat = buf[:total]
                for b, rng in enumerate(h.rngs):
                    cnt = int(per_replica[b])
                    if cnt:
                        rng.random(
                            dtype=h.dtype,
                            out=uni_flat[h.kern_uoff[b] : h.kern_uoff[b] + cnt],
                        )
                kern.excess_dispatch(
                    h.kern_adj_edges, h.kern_adj_signs, h.dmax, m, fsg,
                    h.kern_counts, uni_flat, h.kern_uoff, h.act,
                    h.kern_consts,
                )
        return h.act

    def _round_flows(self, h: _BatchedHandle, sched: np.ndarray) -> np.ndarray:
        """Vectorised rounding of the scheduled flows; returns the actuals."""
        rounding = h.config.rounding
        act = h.act
        if rounding == "identity":
            # The actual flows *are* the scheduled ones; keep them as the
            # new flow state (round 0 schedules out of a scratch buffer).
            if sched is not h.flows:
                np.copyto(h.flows, sched)
            return h.flows
        if rounding == "floor":
            return np.trunc(sched, out=act)
        if rounding == "nearest":
            # rint is symmetric, so rint(x) == sign(x) * rint(|x|) bit for bit
            return np.rint(sched, out=act)
        if rounding == "ceil":
            absf = np.abs(sched, out=h.mb2)
            np.ceil(absf, out=absf)
            return np.copysign(absf, sched, out=act)
        if rounding == "unbiased-edge":
            absf = np.abs(sched, out=h.mb2)
            np.floor(absf, out=act)
            np.subtract(absf, act, out=absf)  # fractional parts
            m = sched.shape[0]
            u = h.mb3
            for b, rng in enumerate(h.rngs):  # one stream per replica
                u[:, b] = rng.random(m, dtype=h.dtype)
            up = u < absf
            np.add(act, up, out=act)
            return np.copysign(act, sched, out=act)
        if rounding == "randomized-excess":
            return self._randomized_excess(h, sched)
        raise ConfigurationError(f"unsupported rounding {rounding!r}")

    def _randomized_excess(self, h: _BatchedHandle, sched: np.ndarray) -> np.ndarray:
        """The paper's excess-token rounding, vectorised across the batch.

        Floor every flow, pool each sender's fractional parts ``r``, then
        dispatch ``ceil(r)`` excess tokens, each landing on outgoing edge
        ``j`` with probability ``{Yhat_j} / ceil(r)`` and staying home
        otherwise (Observation 1).  No per-round sorting: the signed
        fractional parts are routed through the topology's fixed padded
        adjacency into ``max_degree`` dense cumulative planes, whose last
        plane *is* the surplus ``r``; every token then draws one uniform
        scaled to ``[0, c)`` and finds its slot by comparing against the
        planes.  A zero-width slot (no outgoing fraction) can never strictly
        contain a draw, so sub-``1e-9`` float fuzz needs no explicit cleanup
        here; ``c`` uses the same tolerance as the reference rounding.

        The joint token-count distribution is the reference scheme's
        multinomial exactly; only the generator's consumption order differs.
        """
        act = h.act
        B = h.n_replicas
        m = h.topo.m_edges
        if m == 0:
            return np.multiply(sched, 1.0, out=act)
        # Signed base and fractional parts in two passes:
        # trunc(x) == sign(x) * floor(|x|), and fsg = sched - trunc(sched).
        np.trunc(sched, out=act)
        fsg = np.subtract(sched, act, out=h.mb3)
        # Split into positive / negative outgoing-fraction blocks so a slot's
        # outgoing fraction is a single gather: P = max(fsg, 0), N = P - fsg.
        pn = h.pn
        p_block = pn[:m]
        np.maximum(fsg, 0.0, out=p_block)
        np.subtract(p_block, fsg, out=pn[m + 1 : 2 * m + 1])

        if h.tile:
            return self._excess_tokens_tiled(h, act)

        # Cumulative outgoing-fraction planes over the node's incident edges
        # (fixed permutation — no per-round sorting).
        planes = h.cum_planes
        np.take(pn, h.slot_take[0], axis=0, out=planes[0])
        for j in range(1, h.dmax):
            np.take(pn, h.slot_take[j], axis=0, out=planes[j])
            np.add(planes[j], planes[j - 1], out=planes[j])
        r = planes[h.dmax - 1]  # surplus per (node, replica)

        # Token budget c = ceil(r - tol): exactly 0 (well, -0.0) for senders
        # with no fractional surplus, so they emit no tokens.
        c = np.subtract(r, h.frac_tol, out=h.nb3)
        np.ceil(c, out=c)
        c_flat = c.ravel()
        counts = c_flat.astype(np.int64)
        tok_slot = np.repeat(h.slot_arange, counts)
        if tok_slot.size == 0:
            return act
        target = _token_uniforms(h.rngs, tok_slot, B, h.dtype)
        np.multiply(target, c_flat[tok_slot], out=target)
        # slot index = number of cumulative planes <= target (searchsorted
        # 'right' over the sender's segment, zero-width slots skipped)
        planes_flat = planes.reshape(h.dmax, -1)
        pos = (planes_flat[0][tok_slot] <= target).view(np.uint8).astype(np.int64)
        for j in range(1, h.dmax):
            pos += planes_flat[j][tok_slot] <= target
        moved = np.flatnonzero(pos < h.dmax)  # the rest stay home
        if moved.size:
            tok_moved = tok_slot[moved]
            node = tok_moved // B
            col = tok_moved - node * B
            flat_slot = node * h.dmax + pos[moved]
            edge_ids = h.adj_edges_flat[flat_slot]
            signs = h.slot_dirs_flat[flat_slot]
            extra = np.bincount(
                edge_ids * B + col, weights=signs, minlength=m * B
            )
            np.add(act, extra.reshape(m, B), out=act)
        return act

    def _excess_tokens_tiled(self, h: _BatchedHandle, act: np.ndarray) -> np.ndarray:
        """Lazy token-plane variant of the excess dispatch: the cumulative
        outgoing-fraction planes are built one node tile at a time, bounding
        the dominant ``(max_degree, n, B)`` scratch to ``(max_degree, tile,
        B)``.  Each replica's tokens draw from its own stream in global node
        order — exactly the dense path's consumption order, since
        consecutive ``Generator.random`` calls continue one stream — so
        tiled and dense dispatches are bit-identical for any tile size.
        """
        B = h.n_replicas
        m = h.topo.m_edges
        pn = h.pn
        planes = h.cum_planes
        tok_cols: List[np.ndarray] = []
        tok_signs: List[np.ndarray] = []
        for a, b in h.node_tiles:
            k = b - a
            pl = planes[:, :k]
            np.take(pn, h.slot_take[0][a:b], axis=0, out=pl[0])
            for j in range(1, h.dmax):
                np.take(pn, h.slot_take[j][a:b], axis=0, out=pl[j])
                np.add(pl[j], pl[j - 1], out=pl[j])
            c = np.subtract(pl[h.dmax - 1], h.frac_tol, out=h.ts1[:k])
            np.ceil(c, out=c)
            c_flat = c.ravel()
            counts = c_flat.astype(np.int64)
            tok_slot = np.repeat(h.slot_arange[: k * B], counts)
            if tok_slot.size == 0:
                continue
            target = _token_uniforms(h.rngs, tok_slot, B, h.dtype)
            np.multiply(target, c_flat[tok_slot], out=target)
            pl_flat = pl.reshape(h.dmax, -1)
            pos = (pl_flat[0][tok_slot] <= target).view(np.uint8).astype(np.int64)
            for j in range(1, h.dmax):
                pos += pl_flat[j][tok_slot] <= target
            moved = np.flatnonzero(pos < h.dmax)
            if moved.size:
                tok_moved = tok_slot[moved]
                node = tok_moved // B
                col = tok_moved - node * B
                flat_slot = (node + a) * h.dmax + pos[moved]
                tok_cols.append(h.adj_edges_flat[flat_slot] * B + col)
                tok_signs.append(h.slot_dirs_flat[flat_slot])
        if tok_cols:
            extra = np.bincount(
                np.concatenate(tok_cols),
                weights=np.concatenate(tok_signs),
                minlength=m * B,
            )
            np.add(act, extra.reshape(m, B), out=act)
        return act

    # ------------------------------------------------------------------
    # dynamic workloads
    # ------------------------------------------------------------------
    def _apply_arrivals(self, h: _BatchedHandle) -> ArrivalBatch:
        """Sample and apply one round of per-replica workload deltas.

        Counts are drawn per replica from its own spawned stream (the price
        of bit-exactness with the reference engine and ``DynamicSimulator``);
        clamping and application are vectorised across the whole ``(n, B)``
        batch.  The elementwise expression tree mirrors
        ``DynamicSimulator.inject`` exactly, so B=1 float64 runs agree bit
        for bit for deterministic roundings.
        """
        if h.arrivals_applied:
            raise SimulationError(
                f"arrivals already applied for round {h.round_index}"
            )
        topo, t = h.topo, h.round_index
        deltas = h.arr_deltas
        if h.arrival_batch_rng is not None:
            # Batch-wide sampling: one vectorised draw for every replica from
            # the shared batch stream (the opt-out of stream-for-stream
            # cross-engine exactness; counts keep the exact per-replica
            # distribution).
            deltas[...] = h.arrival_models[0].batch_deltas(
                topo, t, h.arrival_batch_rng, h.n_replicas
            )
        else:
            for b, (model, rng) in enumerate(
                zip(h.arrival_models, h.arrival_rngs)
            ):
                deltas[:, b] = model.deltas(topo, t, rng)
        if h.arrival_scale_row is not None:
            # Per-replica arrival-rate scale, applied to the sampled plane
            # before clamping.  Sampling above consumed exactly the unscaled
            # streams, so scaled replicas stay stream-compatible with their
            # unscaled selves; the elementwise product matches the
            # per-replica backends' ScaledArrivals wrapper bit for bit.
            np.multiply(deltas, h.arrival_scale_row, out=deltas)
        if h.churn_plan is not None:
            # Dead and unborn nodes take no workload: zero their rows after
            # sampling, so the streams consume exactly the no-churn draws
            # (the reference engine masks the same way).
            deltas[~h.churn_active] = 0.0
        if not deltas.any():
            # Quiet round (e.g. a burst model between bursts): the RNG
            # streams were already consumed above, and applying all-zero
            # deltas is the identity, so skip the clamping passes.
            zeros = np.zeros(h.n_replicas)
            h.arrivals_applied = True
            h.last_arrival = ArrivalBatch(
                round_index=t, arrived=zeros, departed=zeros.copy(),
                clamped=zeros.copy(),
            )
            return h.last_arrival
        if h.tile:
            arrived = np.zeros(h.n_replicas)
            departed = np.zeros(h.n_replicas)
            clamped = np.zeros(h.n_replicas)
            for a, b in h.node_tiles:
                k = b - a
                d_t = deltas[a:b]
                pos = np.maximum(d_t, 0.0, out=h.ts1[:k])
                want = np.negative(d_t, out=h.ts2[:k])
                np.maximum(want, 0.0, out=want)
                relu_load = np.maximum(h.load[a:b], 0.0, out=h.ts3[:k])
                actual = np.minimum(want, relu_load, out=relu_load)
                np.add(h.load[a:b], pos, out=h.load[a:b])
                np.subtract(h.load[a:b], actual, out=h.load[a:b])
                arrived += pos.sum(axis=0, dtype=np.float64)
                departed += actual.sum(axis=0, dtype=np.float64)
                np.subtract(want, actual, out=want)
                clamped += want.sum(axis=0, dtype=np.float64)
        else:
            pos = np.maximum(deltas, 0.0, out=h.arr_pos)
            want = np.negative(deltas, out=h.arr_want)
            np.maximum(want, 0.0, out=want)
            # Consume at most the non-negative part of the current load
            # (reuse the deltas buffer — pos/want already extracted).
            relu_load = np.maximum(h.load, 0.0, out=deltas)
            actual = np.minimum(want, relu_load, out=h.arr_actual)
            np.add(h.load, pos, out=h.load)
            np.subtract(h.load, actual, out=h.load)
            arrived = pos.sum(axis=0, dtype=np.float64)
            departed = actual.sum(axis=0, dtype=np.float64)
            np.subtract(want, actual, out=want)
            clamped = want.sum(axis=0, dtype=np.float64)
        h.expected_totals += arrived
        h.expected_totals -= departed
        h.arrivals_applied = True
        h.last_arrival = ArrivalBatch(
            round_index=t, arrived=arrived, departed=departed, clamped=clamped
        )
        return h.last_arrival

    def _record_dynamic_churn(self, h: _BatchedHandle) -> None:
        """Churn variant: per-replica masked reductions over the live set.

        Loops over replicas so each column's metrics run through the exact
        masked expressions of :func:`~repro.core.churn.masked_dynamic_values`
        on a contiguous copy — the same operations, on the same memory
        layout, as the reference engine's per-replica loop, keeping the
        deterministic-rounding traces bit-identical.
        """
        arrival = h.last_arrival
        i = h.dyn_count
        B = h.n_replicas
        totals = np.empty(B)
        for b in range(B):
            col = np.ascontiguousarray(h.load[:, b])
            vals = masked_dynamic_values(h.topo, col, h.churn_active_idx)
            totals[b] = vals["total_load"]
            for name, value in vals.items():
                h.dyn_cols[name][i, b] = value
        h.dyn_cols["arrived"][i] = arrival.arrived
        h.dyn_cols["departed"][i] = arrival.departed
        h.dyn_cols["clamped"][i] = arrival.clamped
        h.dyn_round[i] = h.round_index
        h.dyn_count += 1
        drift = np.abs(totals - h.expected_totals)
        bad = drift > h.conserve_tol * np.maximum(1.0, np.abs(h.expected_totals))
        if bad.any():
            b = int(np.argmax(bad))
            raise SimulationError(
                f"load not conserved in replica {b} by round {h.round_index}: "
                f"expected {h.expected_totals[b]}, got {totals[b]}"
            )

    def _record_dynamic(self, h: _BatchedHandle) -> None:
        """Append this round's dynamic metrics (targets move with the total)."""
        if h.churn_plan is not None:
            self._record_dynamic_churn(h)
            return
        load = h.load
        arrival = h.last_arrival
        values: Dict[str, np.ndarray] = {
            "arrived": arrival.arrived,
            "departed": arrival.departed,
            "clamped": arrival.clamped,
        }
        if h.tile:
            B = h.n_replicas
            totals = np.zeros(B)
            maxs = np.full(B, -np.inf, dtype=h.dtype)
            for a, b in h.node_tiles:
                totals += load[a:b].sum(axis=0, dtype=np.float64)
                np.maximum(maxs, load[a:b].max(axis=0), out=maxs)
            mean = totals / h.topo.n
            mean_t = mean.astype(h.dtype, copy=False)
            pot = np.zeros(B)
            for a, b in h.node_tiles:
                k = b - a
                dev = np.subtract(load[a:b], mean_t, out=h.ts1[:k])
                np.multiply(dev, dev, out=dev)
                pot += dev.sum(axis=0, dtype=np.float64)
            values["max_minus_avg"] = maxs - mean
            values["potential_per_node"] = pot / h.topo.n
        else:
            totals = load.sum(axis=0, dtype=np.float64)
            mean = totals / h.topo.n
            values["max_minus_avg"] = load.max(axis=0) - mean
            dev = np.subtract(load, mean.astype(h.dtype, copy=False), out=h.nb1)
            np.multiply(dev, dev, out=dev)
            values["potential_per_node"] = (
                dev.sum(axis=0, dtype=np.float64) / h.topo.n
            )
        values["total_load"] = totals
        values["max_local_diff"] = self._mld(h)
        if h.dyn_stats is not None:
            h.dyn_stats.update(h.round_index, values)
        else:
            i = h.dyn_count
            for name, value in values.items():
                h.dyn_cols[name][i] = value
            h.dyn_round[i] = h.round_index
        h.dyn_count += 1
        drift = np.abs(totals - h.expected_totals)
        bad = drift > h.conserve_tol * np.maximum(1.0, np.abs(h.expected_totals))
        if bad.any():
            b = int(np.argmax(bad))
            raise SimulationError(
                f"load not conserved in replica {b} by round {h.round_index}: "
                f"expected {h.expected_totals[b]}, got {totals[b]}"
            )

    def arrive(self, h: _BatchedHandle) -> ArrivalBatch:
        if h.arrival_models is None:
            raise ConfigurationError(
                "arrive() needs a dynamic run (config.arrivals was None)"
            )
        self._maybe_churn(h)
        return self._apply_arrivals(h)

    # ------------------------------------------------------------------
    def _mld(self, h: _BatchedHandle) -> np.ndarray:
        """Per-replica max local load difference of the current loads."""
        if h.topo.m_edges == 0:
            return np.zeros(h.n_replicas)
        if h.tile:
            return _tiled_mld(
                h.load, h.topo.edge_u, h.topo.edge_v, h.edge_tiles,
                h.ts1, h.ts2,
            )
        ediff = _csr_dot(h.E, h.load, h.mb3)
        np.abs(ediff, out=ediff)
        return ediff.max(axis=0)

    def _record_current_churn(self, h: _BatchedHandle) -> None:
        """Churn variant of :meth:`_record_current`: masked, per replica.

        Churn runs reject ``record_mode='summary'`` and trimmed
        ``record_fields``, so this always fills every dense column.
        """
        i = h.rec_count
        totals = np.empty(h.n_replicas)
        for b in range(h.n_replicas):
            col = np.ascontiguousarray(h.load[:, b])
            vals = masked_static_values(h.topo, col, h.churn_active_idx)
            totals[b] = vals["total_load"]
            for name, value in vals.items():
                h.rec_cols[name][i, b] = value
        h.rec_cols["min_transient"][i] = h.last_min_transient
        h.rec_cols["round_traffic"][i] = h.last_traffic
        h.rec_round[i] = h.round_index
        h.rec_scheme[i] = h.sos_active
        h.rec_count += 1
        h.last_recorded_round = h.round_index
        if h.loads_history is not None:
            h.loads_history.append(h.load.T.copy())
        drift = np.abs(totals - h.totals0)
        bad = drift > h.conserve_tol * np.maximum(1.0, np.abs(h.totals0))
        if bad.any():
            b = int(np.argmax(bad))
            raise SimulationError(
                f"load not conserved in replica {b} by round {h.round_index}: "
                f"{h.totals0[b]} -> {totals[b]}"
            )

    def _record_current(self, h: _BatchedHandle) -> None:
        """Append the requested Section VI metrics of the current state."""
        if h.churn_plan is not None:
            self._record_current_churn(h)
            return
        load = h.load
        fields = h.fields
        scratch = h.ts1 if h.tile else h.nb1
        values, totals = _node_metrics(
            load, h.targets, fields, scratch, h.node_tiles if h.tile else None
        )
        if "min_transient" in fields:
            values["min_transient"] = h.last_min_transient
        if "round_traffic" in fields:
            values["round_traffic"] = h.last_traffic
        if "max_local_diff" in fields:
            h.last_mld = self._mld(h)
            values["max_local_diff"] = h.last_mld
        if h.rec_stats is not None:
            h.rec_stats.update(h.round_index, values)
        else:
            i = h.rec_count
            if i == h.rec_round.shape[0]:  # defensive; sized exactly in prepare
                h.rec_round = np.resize(h.rec_round, i * 2)
                h.rec_scheme = np.resize(h.rec_scheme, (i * 2, h.n_replicas))
                h.rec_cols = {
                    k: np.resize(v, (i * 2, h.n_replicas))
                    for k, v in h.rec_cols.items()
                }
            for name, value in values.items():
                h.rec_cols[name][i] = value
            h.rec_round[i] = h.round_index
            h.rec_scheme[i] = h.sos_active
        h.rec_count += 1
        h.last_recorded_round = h.round_index
        if h.loads_history is not None:
            h.loads_history.append(load.T.copy())
        drift = np.abs(totals - h.totals0)
        bad = drift > h.conserve_tol * np.maximum(1.0, np.abs(h.totals0))
        if bad.any():
            b = int(np.argmax(bad))
            raise SimulationError(
                f"load not conserved in replica {b} by round {h.round_index}: "
                f"{h.totals0[b]} -> {totals[b]}"
            )

    # ------------------------------------------------------------------
    def _check_switch(self, h: _BatchedHandle) -> None:
        """Vectorised hybrid SOS -> FOS policies (per replica)."""
        sw = h.switch
        t = h.round_index
        none = None
        if sw.kind == "fixed":
            newly = h.sos_active & (t >= int(sw.args[0]))
        elif sw.kind == "fixed-vec":
            # Per-replica fixed rounds (replica_params.switch_rounds):
            # column b fires at its own round; negative entries never do.
            rounds_vec = sw.args[0]
            newly = h.sos_active & (rounds_vec >= 0) & (t >= rounds_vec)
        elif sw.kind == "local-diff":
            threshold = float(sw.args[0]) if sw.args else 10.0
            min_rounds = int(sw.args[1]) if len(sw.args) > 1 else 1
            if t < min_rounds:
                newly = none
            else:
                fresh = (
                    h.last_recorded_round == t
                    and "max_local_diff" in h.fields
                )
                mld = h.last_mld if fresh else self._mld(h)
                newly = h.sos_active & (mld <= threshold)
        elif sw.kind == "plateau":
            window = int(sw.args[0]) if sw.args else 50
            min_drop = float(sw.args[1]) if len(sw.args) > 1 else 0.2
            min_rounds = int(sw.args[2]) if len(sw.args) > 2 else 10
            mean = h.load.mean(axis=0)
            dev = np.subtract(h.load, mean, out=h.nb1)
            np.multiply(dev, dev, out=dev)
            phi = dev.sum(axis=0)
            hist = sw.phi_hist
            hist[sw.phi_count % window] = phi
            sw.phi_count += 1
            if t < min_rounds or sw.phi_count < window:
                newly = none
            else:
                oldest = hist[sw.phi_count % window]
                plateaued = (oldest <= 0.0) | (phi > (1.0 - min_drop) * oldest)
                newly = h.sos_active & plateaued
        else:
            raise ConfigurationError(f"unknown switch kind {sw.kind!r}")
        if newly is none:
            h.last_switched = np.zeros(h.n_replicas, dtype=bool)
            return
        h.last_switched = newly
        if newly.any():
            h.beta_row[0, newly] = 1.0
            h.sos_active[newly] = False
            h.switched_at[newly] = t

    # ==================================================================
    # protocol surface
    # ==================================================================
    def step(self, h: _BatchedHandle) -> StepBatch:
        self._advance(h, want_info=True)
        return StepBatch(
            round_index=h.round_index,
            loads=h.load.T.copy(),
            flows=h.flows.T.copy(),
            min_transient=h.last_min_transient.copy(),
            traffic=h.last_traffic.copy(),
            switched=h.last_switched.copy(),
        )

    def metrics(self, h: _BatchedHandle) -> RecordBatch:
        if h.arrival_models is not None:
            if h.dyn_stats is not None:
                return RecordBatch(
                    dynamic_summary_stats=h.dyn_stats,
                    final_loads=h.load.T.copy(),
                    final_flows=h.flows.T.copy(),
                    switched_at=h.switched_at.copy(),
                )
            count = h.dyn_count
            return RecordBatch(
                dynamic_round_index=h.dyn_round[:count].copy(),
                dynamic_columns={
                    k: v[:count].copy() for k, v in h.dyn_cols.items()
                },
                final_loads=h.load.T.copy(),
                final_flows=h.flows.T.copy(),
                switched_at=h.switched_at.copy(),
            )
        if h.last_recorded_round != h.round_index:
            self._record_current(h)
        if h.rec_stats is not None:
            return RecordBatch(
                summary_stats=h.rec_stats,
                scheme_last=h.sos_active.astype(np.uint8),
                final_loads=h.load.T.copy(),
                final_flows=h.flows.T.copy(),
                switched_at=h.switched_at.copy(),
                loads_history=h.loads_history,
            )
        count = h.rec_count
        return RecordBatch(
            round_index=h.rec_round[:count].copy(),
            scheme_codes=h.rec_scheme[:count].copy(),
            columns={k: v[:count].copy() for k, v in h.rec_cols.items()},
            final_loads=h.load.T.copy(),
            final_flows=h.flows.T.copy(),
            switched_at=h.switched_at.copy(),
            loads_history=h.loads_history,
        )

    def run(self, topo, config, initial_loads):
        """Fused ensemble loop — :meth:`run_batch` sliced into per-replica
        :class:`~repro.core.simulator.SimulationResult` objects."""
        return self.run_batch(topo, config, initial_loads).results()

    def run_batch(self, topo, config, initial_loads) -> RecordBatch:
        """Fused ensemble loop returning the whole columnar record batch.

        Transient/traffic info is computed only where recorded *and*
        requested; dispatches to the closed-form continuous fast path when
        the config is eligible (see :meth:`_fast_path_mode`).  The sharded
        engine calls this per worker so shards stay columnar until the
        final merge; :meth:`run` is the per-replica wrapper.
        """
        if config.arrivals is not None:
            raise ConfigurationError(
                "config has arrival models; dynamic workloads run through "
                "run_dynamic()"
            )
        config.validate()
        # The guards run here as well as in prepare(): the closed-form
        # fast path never reaches prepare(), and silently ignoring an
        # async/fault knob there would lie about what ran.
        reject_async_only(config, "batched")
        reject_network_only(config, "batched")
        if config.scheme == "sos" and not 0.0 < config.beta < 2.0:
            # prepare() enforces this for the edge-wise path; the fast path
            # never reaches prepare(), and a beta outside (0, 2) makes the
            # recurrence divergent rather than merely wrong.
            raise SchemeError(f"beta must be in (0, 2), got {config.beta}")
        if config.kernel not in ("numpy", "auto"):
            # A forced kernel provider must be resolvable (and discrete)
            # even when the closed-form fast path would bypass the
            # edge-wise loop entirely — silently ignoring it would lie
            # about what ran.
            resolve_kernel(config, topo.m_edges)
        loads = as_load_batch(initial_loads, topo.n)
        params = resolve_replica_params(config.replica_params, loads.shape[0])
        mode = self._fast_path_mode(topo, config, params)
        if mode is not None:
            return self._run_fast(topo, config, loads, mode, params)
        h = self.prepare(topo, config, initial_loads)
        record_every = config.record_every
        for r in range(1, config.rounds + 1):
            record = r % record_every == 0 or r == config.rounds
            self._advance(h, want_info=record and h.info_fields)
        return self.metrics(h)

    # ==================================================================
    # closed-form continuous fast path
    # ==================================================================
    def _fast_path_mode(
        self, topo, config, params: Optional[ResolvedReplicaParams] = None
    ) -> Optional[str]:
        """``None`` (edge-wise), ``"matmul"`` or ``"spectral"``.

        Eligibility: ``identity`` rounding, no switch policy (global or
        per-replica), no arrivals, and ``record_fields`` excluding the
        transient/traffic columns — those are the only quantities whose
        definition needs edge space.  ``"auto"`` prefers the closed-form
        spectral kernel on graphs advertising one (full-wrap tori via
        ``grid_shape``, hypercubes via ``cube_dim`` — uniform speeds and
        alphas, and per-replica betas/alpha scales only when uniform, since
        the mode recurrence is replica-independent) and the
        one-matmul-per-round CSR kernel otherwise (which *does* take
        per-replica betas, alpha scales and load scales); forcing a tier
        raises when the run is not eligible for it.
        """
        if config.fast_path == "never":
            return None
        forced = config.fast_path in ("matmul", "spectral")
        fields = resolve_record_fields(config.record_fields)
        blockers = []
        if config.rounding != "identity":
            blockers.append(f"rounding {config.rounding!r} (needs 'identity')")
        if config.switch is not None:
            blockers.append("a hybrid switch policy")
        if params is not None and params.switch_rounds is not None:
            blockers.append("per-replica switch rounds")
        if any(f in fields for f in _INFO_FIELDS):
            blockers.append(
                "record_fields requesting min_transient/round_traffic"
            )
        if config.churn is not None:
            # The closed-form tiers assume a frozen operator (the spectral
            # kernel additionally a frozen structured topology); churn
            # invalidates both on the first mutation, so the run falls back
            # to the edge-wise loop — once, with a log, never mid-run.
            if not forced and not blockers:
                logger.info(
                    "churn: topology mutates mid-run, invalidating the "
                    "closed-form fast path%s; falling back to the "
                    "edge-wise loop",
                    ""
                    if self._spectral_blocker(topo, config, params)
                    else " (spectral hints included)",
                )
            blockers.append("a churn schedule (the topology mutates mid-run)")
        if blockers:
            if forced:
                raise ConfigurationError(
                    f"fast_path={config.fast_path!r} is blocked by "
                    + " and ".join(blockers)
                )
            return None
        spectral_reason = self._spectral_blocker(topo, config, params)
        if config.fast_path == "spectral":
            if spectral_reason:
                raise ConfigurationError(
                    f"fast_path='spectral' unavailable: {spectral_reason}"
                )
            return "spectral"
        if config.fast_path == "matmul":
            return "matmul"
        return "matmul" if spectral_reason else "spectral"

    def _spectral_blocker(
        self, topo, config, params: Optional[ResolvedReplicaParams] = None
    ) -> Optional[str]:
        """Why the spectral kernel cannot run (None when it can)."""
        if topo.grid_shape is None and topo.cube_dim is None:
            return (
                "the topology advertises no torus grid_shape (or hypercube "
                "cube_dim)"
            )
        speeds = (
            config.speeds if config.speeds is not None else uniform_speeds(topo.n)
        )
        speeds = validate_speeds(speeds, topo.n)
        if not np.all(speeds == speeds[0]):
            return "node speeds are heterogeneous"
        alphas = resolve_alphas(config.alphas, topo, speeds)
        if alphas.size and not np.all(alphas == alphas[0]):
            return "edge alphas are heterogeneous"
        if params is not None:
            # The mode recurrence is one scalar sequence per eigenvalue,
            # independent of the replica count — a replica-varying beta or
            # alpha scale would need one recurrence per replica, which is
            # the matmul tier's job.
            if uniform_plane_value(params.betas) is None and params.betas is not None:
                return "per-replica betas vary across the batch"
            if (
                params.alpha_scales is not None
                and uniform_plane_value(params.alpha_scales) is None
            ):
                return "per-replica alpha scales vary across the batch"
        return None

    def _run_fast(
        self,
        topo,
        config,
        loads,
        mode: str,
        params: Optional[ResolvedReplicaParams] = None,
    ) -> RecordBatch:
        """Advance the continuous (identity-rounding) process in closed form.

        ``"matmul"``: the SOS recurrence ``x(t+1) = beta M x(t) +
        (1-beta) x(t-1)`` — algebraically identical to the edge-wise update
        with identity rounding — advanced with a single ``(n, B)`` CSR
        matmul per round, bypassing edge space entirely.  With a uniform
        batch the matmul hits the folded diffusion matrix
        ``M = I + D A E S^{-1}``; per-replica betas/alpha scales instead
        share one increment operator ``K = M - I`` and blend
        ``beta_b (x + c_b K x) + (1 - beta_b) x(t-1)`` per column.

        ``"spectral"``: the same recurrence per *eigenmode* of a structured
        graph — the ``rfftn`` Fourier basis of a full-wrap torus, or the
        Walsh basis of a hypercube (one FWHT of the initial loads): a
        scalar three-term recurrence on the ``O(n)`` mode multipliers per
        round (independent of the replica count), and one inverse
        transform per record round to materialise node space.

        All tiers agree with the edge-wise identity path to float
        accumulation accuracy; records carry NaN for the excluded
        transient/traffic columns and zero flows in the final state (the
        continuous scheduled flows are never materialised).
        """
        loads = apply_load_scales(loads, params)
        n = topo.n
        B = loads.shape[0]
        dtype = np.float32 if config.precision == "float32" else np.float64
        x = np.asarray(loads.T, dtype=dtype).copy(order="C")
        speeds = validate_speeds(
            config.speeds if config.speeds is not None else uniform_speeds(n), n
        )
        alphas = resolve_alphas(config.alphas, topo, speeds)
        beta = float(config.beta) if config.scheme == "sos" else 1.0
        # Per-replica planes: uniform planes fold into the scalar kernels,
        # varying ones stay as row vectors for the generalized matmul tier
        # (the spectral blocker already rejected them there).
        beta_vec = params.betas if params is not None else None
        scale_vec = params.alpha_scales if params is not None else None
        u_beta = uniform_plane_value(beta_vec)
        if u_beta is not None:
            beta, beta_vec = u_beta, None
        u_scale = uniform_plane_value(scale_vec)
        if u_scale is not None:
            alphas, scale_vec = alphas * u_scale, None
        recorder = _FastRecorder(topo, config, x, speeds, dtype)
        recorder.record(0, x)
        rounds = config.rounds
        record_every = config.record_every
        if rounds == 0:
            return recorder.batch(x)

        if mode == "spectral":
            alpha_eff = (float(alphas[0]) if alphas.size else 0.0) / float(
                speeds[0]
            )
            if topo.grid_shape is not None:
                shape = topo.grid_shape
                axes = tuple(range(len(shape)))
                mu = torus_rfft_eigenvalues(shape, alpha_eff)
                coeff0 = np.fft.rfftn(x.reshape(*shape, B), axes=axes)

                def materialize(g):
                    coeff = coeff0 * g[..., None]
                    out = np.fft.irfftn(coeff, s=shape, axes=axes)
                    return np.ascontiguousarray(out.reshape(n, B), dtype=dtype)

            else:
                # Hypercube: the Walsh characters diagonalise the cube's
                # Laplacian; mode s has eigenvalue 1 - 2 alpha popcount(s).
                # n = 2**k, so the 1/n of the inverse FWHT is an exact
                # power-of-two scale.
                mu = hypercube_wht_eigenvalues(topo.cube_dim, alpha_eff)
                coeff0 = fwht(x)
                inv_n = 1.0 / n

                def materialize(g):
                    out = fwht(coeff0 * g[:, None])
                    out *= inv_n
                    return np.ascontiguousarray(out, dtype=dtype)

            if dtype == np.float32:
                mu = mu.astype(np.float32)
            g_prev = np.ones_like(mu)
            g_cur = mu.copy()
            g_next = np.empty_like(mu)
            one_minus_beta = 1.0 - beta

            x_t = x
            for r in range(1, rounds + 1):
                if r >= 2:
                    np.multiply(g_prev, one_minus_beta, out=g_prev)
                    np.multiply(mu, g_cur, out=g_next)
                    np.multiply(g_next, beta, out=g_next)
                    np.add(g_next, g_prev, out=g_next)
                    g_prev, g_cur, g_next = g_cur, g_next, g_prev
                if r % record_every == 0 or r == rounds:
                    x_t = materialize(g_cur)
                    recorder.record(r, x_t)
            return recorder.batch(x_t)

        if beta_vec is not None or scale_vec is not None:
            return self._run_fast_matmul_planes(
                topo, config, recorder, x, speeds, alphas, beta, beta_vec,
                scale_vec, dtype,
            )

        m1 = _diffusion_matrix(topo, alphas, speeds, dtype)
        mb = sp.csr_matrix(
            ((m1.data * dtype(beta)), m1.indices, m1.indptr), shape=m1.shape
        )
        cur = np.empty_like(x)
        scratch = np.empty_like(x)
        _csr_dot(m1, x, cur)  # round 1: both schemes open with FOS
        prev = x
        if 1 % record_every == 0 or rounds == 1:
            recorder.record(1, cur)
        one_minus_beta = dtype(1.0 - beta)
        for r in range(2, rounds + 1):
            if beta == 1.0:
                _csr_dot(m1, cur, scratch)
            else:
                np.multiply(prev, one_minus_beta, out=scratch)
                _csr_dot(mb, cur, scratch, accumulate=True)
            prev, cur, scratch = cur, scratch, prev
            if r % record_every == 0 or r == rounds:
                recorder.record(r, cur)
        return recorder.batch(cur)

    def _run_fast_matmul_planes(
        self, topo, config, recorder, x, speeds, alphas, beta, beta_vec,
        scale_vec, dtype,
    ) -> RecordBatch:
        """The matmul tier with per-replica beta/alpha-scale row vectors.

        One shared CSR matmul against the increment operator ``K`` per
        round; the per-replica parameters enter as elementwise row
        blends: ``M_b x = x + c_b (K x)`` and
        ``x(t+1) = beta_b (M_b x(t)) + (1 - beta_b) x(t-1)``.
        """
        B = x.shape[1]
        rounds = config.rounds
        record_every = config.record_every
        kmat = _gradient_matrix(topo, alphas, speeds, dtype)
        c_row = (
            scale_vec[None, :].astype(dtype) if scale_vec is not None else None
        )
        if beta_vec is not None:
            beta_row = beta_vec[None, :].astype(dtype)
        else:
            beta_row = np.full((1, B), beta, dtype=dtype)
        omb_row = (1.0 - beta_row).astype(dtype)

        def apply_m(src, out):
            _csr_dot(kmat, src, out)
            if c_row is not None:
                np.multiply(out, c_row, out=out)
            np.add(out, src, out=out)

        cur = np.empty_like(x)
        scratch = np.empty_like(x)
        apply_m(x, cur)  # round 1: both schemes open with FOS
        prev = x
        if 1 % record_every == 0 or rounds == 1:
            recorder.record(1, cur)
        for r in range(2, rounds + 1):
            apply_m(cur, scratch)
            np.multiply(scratch, beta_row, out=scratch)
            np.multiply(prev, omb_row, out=prev)  # prev is rotated out below
            np.add(scratch, prev, out=scratch)
            prev, cur, scratch = cur, scratch, prev
            if r % record_every == 0 or r == rounds:
                recorder.record(r, cur)
        return recorder.batch(cur)

    def run_dynamic(self, topo, config, initial_loads):
        """Fused dynamic ensemble loop — :meth:`run_dynamic_batch` sliced
        into per-replica :class:`~repro.core.dynamic.DynamicResult` objects.
        """
        return self.run_dynamic_batch(topo, config, initial_loads).dynamic_results()

    def run_dynamic_batch(self, topo, config, initial_loads) -> RecordBatch:
        """Fused dynamic ensemble loop returning the columnar record batch.

        Arrivals + balancing, all replicas per vectorised step;
        transient/traffic info is never materialised (dynamic records do
        not carry it, exactly like ``DynamicSimulator``).  The sharded
        engine calls this per worker; :meth:`run_dynamic` is the
        per-replica wrapper.
        """
        if config.arrivals is None:
            raise ConfigurationError(
                "run_dynamic() needs arrival models (set config.arrivals)"
            )
        h = self.prepare(topo, config, initial_loads)
        for _ in range(config.rounds):
            self._advance(h, want_info=False)
        return self.metrics(h)
