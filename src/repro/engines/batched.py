"""Vectorised batched-replica engine: ``B`` independent runs per numpy step.

The engine keeps the whole ensemble as two matrices — loads ``(n, B)`` and
oriented edge flows ``(m, B)``, one replica per column — and advances every
replica simultaneously with CSR edge-wise kernels:

* the per-edge load difference ``x_u - x_v`` is one sparse matmul
  ``E @ load`` with ``E[k] = +1 at edge_u[k], -1 at edge_v[k]`` (bit-exact
  with the gather/subtract formulation because ``edge_u < edge_v`` keeps the
  CSR accumulation in the same order),
* applying flows is ``load += D @ act`` with ``D = +1 at (edge_v, k),
  -1 at (edge_u, k)``,
* per-node outgoing totals (negative-load tracking, Section V) come from the
  identity ``outgoing = (W @ |act| - D @ act) / 2`` with ``W`` the unsigned
  incidence operator — no extra scatter pass.

FOS, SOS, rounding, per-replica hybrid switching and the Section VI metrics
are all vectorised across the batch.  Hybrid switching uses the algebraic
fact that FOS is SOS with ``beta = 1`` (``(1-1)*y + 1*gradient`` is exactly
the gradient in IEEE arithmetic), so a per-replica beta row vector lets
individual replicas switch mid-run without masking.

For the deterministic roundings (floor / nearest / ceil) every elementwise
operation reproduces the reference engine's expression tree, so integral
traces agree *bit for bit* — the cross-engine equivalence suite enforces
this.  Randomised roundings draw from the same distributions (Observation 1
of the paper) but consume one batch-wide generator, so they match the
reference statistically, not stream for stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from ..exceptions import ConfigurationError, SchemeError, SimulationError
from ..core.alphas import resolve_alphas
from ..core.records import DYNAMIC_FLOAT_FIELDS, FLOAT_FIELDS
from ..core.rounding import make_rounding
from ..graphs.speeds import uniform_speeds, validate_speeds
from ..graphs.topology import Topology

from .base import (
    ArrivalBatch,
    Engine,
    EngineConfig,
    RecordBatch,
    StepBatch,
    as_load_batch,
    register_engine,
    resolve_arrival_models,
    resolve_arrival_rngs,
)

__all__ = ["BatchedVectorEngine"]

_FRAC_TOL = 1e-9  # matches repro.core.rounding

try:  # pragma: no cover - exercised implicitly by every batched run
    from scipy.sparse import _sparsetools as _st

    def _csr_dot(
        matrix: sp.csr_matrix,
        x: np.ndarray,
        out: np.ndarray,
        accumulate: bool = False,
    ) -> np.ndarray:
        """``out [+]= matrix @ x`` without allocating the result."""
        if not accumulate:
            out.fill(0.0)
        _st.csr_matvecs(
            matrix.shape[0],
            matrix.shape[1],
            x.shape[1],
            matrix.indptr,
            matrix.indices,
            matrix.data,
            x.ravel(),
            out.ravel(),
        )
        return out

except Exception:  # pragma: no cover - scipy internals moved

    def _csr_dot(
        matrix: sp.csr_matrix,
        x: np.ndarray,
        out: np.ndarray,
        accumulate: bool = False,
    ) -> np.ndarray:
        if accumulate:
            out += matrix @ x
        else:
            out[...] = matrix @ x
        return out


@dataclass
class _SwitchState:
    """Vectorised hybrid-switch policy state."""

    kind: Optional[str] = None
    args: tuple = ()
    phi_hist: Optional[np.ndarray] = None  # (window, B) ring buffer
    phi_count: int = 0


class _BatchedHandle:
    """All state of one batched run: replicas, operators, scratch buffers."""

    def __init__(self, topo: Topology, config: EngineConfig, loads: np.ndarray):
        n, m = topo.n, topo.m_edges
        B = loads.shape[0]
        self.topo = topo
        self.config = config
        self.n_replicas = B
        self.round_index = 0
        dtype = np.float32 if config.precision == "float32" else np.float64
        self.dtype = dtype
        #: fuzz tolerance for the excess-token machinery, precision-scaled
        self.frac_tol = _FRAC_TOL if dtype == np.float64 else 1e-5
        #: relative conservation tolerance (float32 accumulates more drift)
        self.conserve_tol = 1e-6 if dtype == np.float64 else 1e-4
        # Unconditional copy: for B=1 a transposed (n, 1) view is still
        # flagged contiguous, and the engine must never mutate caller data.
        self.load = np.asarray(loads.T, dtype=dtype).copy(order="C")  # (n, B)
        self.flows = np.zeros((m, B), dtype=dtype)

        # -- substrate -------------------------------------------------
        speeds = validate_speeds(
            config.speeds if config.speeds is not None else uniform_speeds(n), n
        )
        self.speeds_col = speeds[:, None].astype(dtype)
        self.uniform_speeds = bool(np.all(speeds == 1.0))
        alphas = resolve_alphas(config.alphas, topo, speeds)
        if m == 0 or np.all(alphas == alphas[0]):
            self.alphas = float(alphas[0]) if m else 1.0
        else:
            self.alphas = alphas[:, None].astype(dtype)
        self.scalar_beta = config.switch is None
        self.beta_row = np.full(
            (1, B), config.beta if config.scheme == "sos" else 1.0, dtype=dtype
        )
        self.sos_active = np.full(B, config.scheme == "sos")
        self.switched_at = np.full(B, -1, dtype=np.int64)
        self.last_switched = np.zeros(B, dtype=bool)

        # -- CSR operators ---------------------------------------------
        eu, ev = topo.edge_u, topo.edge_v
        ar = np.arange(m)
        # E: per-edge difference, entries ordered (+1 @ eu, -1 @ ev).
        self.E = sp.csr_matrix(
            (
                np.tile(np.array([1.0, -1.0], dtype=dtype), m),
                np.column_stack([eu, ev]).ravel() if m else np.empty(0, np.int64),
                2 * np.arange(m + 1),
            ),
            shape=(m, n),
        )
        inc_rows = np.concatenate([eu, ev])
        inc_cols = np.concatenate([ar, ar])
        self.D = sp.coo_matrix(
            (
                np.concatenate([-np.ones(m), np.ones(m)]).astype(dtype),
                (inc_rows, inc_cols),
            ),
            shape=(n, m),
        ).tocsr()
        self.W = sp.coo_matrix(
            (np.ones(2 * m, dtype=dtype), (inc_rows, inc_cols)), shape=(n, m)
        ).tocsr()
        # Fused gradient operators with the edge weights folded into the CSR
        # data — a float-reassociation shortcut, used only where bitwise
        # fidelity to the reference is not part of the contract (statistical
        # roundings, the continuous identity process, and float32 mode).
        self.fused_sched = m > 0 and (
            dtype == np.float32
            or config.rounding in ("randomized-excess", "unbiased-edge", "identity")
        )
        if self.fused_sched:
            alpha_edge = (
                np.full(m, self.alphas)
                if np.isscalar(self.alphas)
                else np.asarray(alphas, dtype=np.float64)
            )
            beta_scale = config.beta if config.scheme == "sos" else 1.0

            def _scaled_e(scale):
                data = np.repeat(alpha_edge * scale, 2).astype(dtype)
                data[1::2] *= -1.0
                return sp.csr_matrix(
                    (data, self.E.indices.copy(), self.E.indptr.copy()),
                    shape=(m, n),
                )

            self.E_alpha = _scaled_e(1.0)
            self.E_alpha_beta = _scaled_e(beta_scale)

        # -- padded adjacency for the excess-token machinery ------------
        if config.rounding == "randomized-excess" and m:
            dmax = int(topo.degrees.max())
            adj_edges = np.full((n, dmax), m, dtype=np.int64)
            slot_dirs = np.zeros((n, dmax))
            idx_node = np.repeat(np.arange(n), topo.degrees)
            pos_in_row = np.arange(idx_node.size) - topo.adj_indptr[idx_node]
            adj_edges[idx_node, pos_in_row] = topo.adj_edge_ids
            slot_dirs[idx_node, pos_in_row] = np.where(
                idx_node < topo.adj_indices, 1.0, -1.0
            )
            self.dmax = dmax
            self.adj_edges_flat = adj_edges.ravel()
            self.slot_dirs_flat = slot_dirs.ravel()
            # Outgoing-fraction gather indices per slot plane: a slot routes
            # to the P block (positive fsg) when the node is the edge's u
            # endpoint, to the N block (negative fsg) when it is v, and to
            # the always-zero padding row otherwise.
            self.slot_take = [
                np.where(
                    slot_dirs[:, j] > 0,
                    adj_edges[:, j],
                    np.where(slot_dirs[:, j] < 0, adj_edges[:, j] + (m + 1), m),
                )
                for j in range(dmax)
            ]
            # P/N blocks: rows [0, m) positive parts, row m zero padding,
            # rows [m+1, 2m+1) negative parts, row 2m+1 zero padding.
            self.pn = np.zeros((2 * (m + 1), B), dtype=dtype)
            # cumulative outgoing fractions per slot plane: (dmax, n, B)
            self.cum_planes = np.empty((dmax, n, B), dtype=dtype)
            self.slot_arange = np.arange(n * B)

        # -- targets ----------------------------------------------------
        if config.targets is not None:
            self.targets = np.asarray(config.targets, dtype=dtype)[:, None]
        else:
            totals = self.load.sum(axis=0)  # (B,)
            self.targets = (
                (totals[None, :] * self.speeds_col) / speeds.sum()
            ).astype(dtype, copy=False)
        self.totals0 = self.load.sum(axis=0)

        # -- switch policy ----------------------------------------------
        self.switch = _SwitchState()
        if config.switch is not None:
            kind, *args = config.switch
            self.switch = _SwitchState(kind=kind, args=tuple(args))
            if kind == "plateau":
                window = int(args[0]) if args else 50
                self.switch.phi_hist = np.zeros((window, B))

        # -- record storage (static runs only: dynamic runs record into
        #    the dyn_* columns below and never touch these) ---------------
        if config.arrivals is None:
            capacity = config.rounds // config.record_every + 2
            self.rec_round = np.empty(capacity, dtype=np.int64)
            self.rec_scheme = np.empty((capacity, B), dtype=np.uint8)
            self.rec_cols: Dict[str, np.ndarray] = {
                name: np.empty((capacity, B)) for name in FLOAT_FIELDS
            }
        self.rec_count = 0
        self.last_recorded_round = -1
        self.loads_history: Optional[List[np.ndarray]] = (
            [] if config.keep_loads else None
        )

        # -- scratch buffers --------------------------------------------
        self.mb1 = np.empty((m, B), dtype=dtype)
        self.mb2 = np.empty((m, B), dtype=dtype)
        self.mb3 = np.empty((m, B), dtype=dtype)
        self.act = np.empty((m, B), dtype=dtype)
        self.nb1 = np.empty((n, B), dtype=dtype)
        self.nb2 = np.empty((n, B), dtype=dtype)
        self.nb3 = np.empty((n, B), dtype=dtype)
        self.nb4 = np.empty((n, B), dtype=dtype)
        self.rng = np.random.default_rng(config.seed)

        self.last_min_transient = self.load.min(axis=0)
        self.last_traffic = np.zeros(B)
        self.last_mld: Optional[np.ndarray] = None

        # -- dynamic workload (per-round arrival hook) -------------------
        self.arrival_models = resolve_arrival_models(config.arrivals, B)
        if self.arrival_models is not None:
            self.arrival_rngs = resolve_arrival_rngs(config, B)
            self.arrivals_applied = False
            self.last_arrival: Optional[ArrivalBatch] = None
            #: exact expected totals, advanced by every arrival application
            #: (token counts are integral, so float64 sums stay exact)
            self.expected_totals = self.load.sum(axis=0, dtype=np.float64)
            self.dyn_round = np.empty(config.rounds, dtype=np.int64)
            self.dyn_cols: Dict[str, np.ndarray] = {
                name: np.empty((config.rounds, B))
                for name in DYNAMIC_FLOAT_FIELDS
            }
            self.dyn_count = 0
            # arrival scratch: deltas / positive part / wanted departures /
            # actual (clamped) departures, all (n, B)
            self.arr_deltas = np.empty((n, B), dtype=dtype)
            self.arr_pos = np.empty((n, B), dtype=dtype)
            self.arr_want = np.empty((n, B), dtype=dtype)
            self.arr_actual = np.empty((n, B), dtype=dtype)


@register_engine
class BatchedVectorEngine(Engine):
    """All replicas at once through CSR edge-wise numpy kernels."""

    name = "batched"

    def prepare(self, topo, config, initial_loads) -> _BatchedHandle:
        config.validate()
        if config.scheme == "sos" and not 0.0 < config.beta < 2.0:
            raise SchemeError(f"beta must be in (0, 2), got {config.beta}")
        make_rounding(config.rounding)  # validate the key early
        loads = as_load_batch(initial_loads, topo.n)
        h = _BatchedHandle(topo, config, loads)
        if h.arrival_models is None:
            self._record_current(h)
        return h

    # ==================================================================
    # per-round kernel
    # ==================================================================
    def _advance(self, h: _BatchedHandle, want_info: bool) -> None:
        """One synchronous round for every replica.

        ``want_info`` additionally computes the round's per-replica transient
        minima and traffic (needed on record rounds, the final round, and
        protocol-level ``step()`` calls); the fused ensemble loop skips them
        elsewhere, exactly like the classic simulator discards unrecorded
        step info.
        """
        config = h.config
        load, flows = h.load, h.flows

        # -- dynamic arrivals (auto-applied when the hook wasn't called) ---
        if h.arrival_models is not None and not h.arrivals_applied:
            self._apply_arrivals(h)

        # -- scheduled flows (Yhat) ----------------------------------------
        if h.uniform_speeds:
            norm = load
        else:
            norm = np.divide(load, h.speeds_col, out=h.nb1)
        if h.fused_sched and (h.round_index == 0 or h.scalar_beta):
            # Fused form: scale flows in place, then accumulate the weighted
            # gradient straight out of the CSR operator.  Bitwise this
            # reorders the float products, which only statistical roundings
            # may do; round 0 uses the plain-alpha operator (FOS opener).
            if h.round_index == 0:
                _csr_dot(h.E_alpha, norm, flows, accumulate=True)
            else:
                beta = float(h.beta_row[0, 0])
                np.multiply(flows, beta - 1.0, out=flows)
                _csr_dot(h.E_alpha_beta, norm, flows, accumulate=True)
            sched = flows
        else:
            diff = _csr_dot(h.E, norm, h.mb1)  # x_u/s_u - x_v/s_v per edge
            np.multiply(diff, h.alphas, out=diff)  # gradient
            if h.round_index == 0:
                # Both schemes open with a plain FOS round.
                sched = diff
            elif h.scalar_beta:
                beta = float(h.beta_row[0, 0])
                np.multiply(diff, beta, out=diff)
                np.multiply(flows, beta - 1.0, out=flows)
                np.add(flows, diff, out=flows)
                sched = flows
            else:
                np.multiply(diff, h.beta_row, out=diff)
                np.multiply(flows, h.beta_row - 1.0, out=flows)
                np.add(flows, diff, out=flows)
                sched = flows

        # -- rounding ------------------------------------------------------
        act = self._round_flows(h, sched)

        # -- step info (transients / traffic), then apply ------------------
        if want_info:
            delta = _csr_dot(h.D, act, h.nb2)
            absf = np.abs(act, out=h.mb2)
            outgoing = _csr_dot(h.W, absf, h.nb3)
            np.subtract(outgoing, delta, out=outgoing)
            np.multiply(outgoing, 0.5, out=outgoing)
            transient = np.subtract(load, outgoing, out=h.nb4)
            h.last_min_transient = transient.min(axis=0)
            h.last_traffic = absf.sum(axis=0)
            np.add(load, delta, out=load)
        else:
            _csr_dot(h.D, act, load, accumulate=True)
        h.round_index += 1
        if act is h.act:
            h.flows, h.act = h.act, h.flows
        # (identity rounding leaves act aliased to sched == flows: no swap)

        # -- record --------------------------------------------------------
        if h.arrival_models is not None:
            self._record_dynamic(h)
            h.arrivals_applied = False
        elif h.round_index % config.record_every == 0:
            self._record_current(h)

        # -- hybrid switch (checked after recording, like the simulator) ---
        if h.switch.kind is not None:
            self._check_switch(h)

    def _round_flows(self, h: _BatchedHandle, sched: np.ndarray) -> np.ndarray:
        """Vectorised rounding of the scheduled flows; returns the actuals."""
        rounding = h.config.rounding
        act = h.act
        if rounding == "identity":
            # The actual flows *are* the scheduled ones; keep them as the
            # new flow state (round 0 schedules out of a scratch buffer).
            if sched is not h.flows:
                np.copyto(h.flows, sched)
            return h.flows
        if rounding == "floor":
            return np.trunc(sched, out=act)
        if rounding == "nearest":
            # rint is symmetric, so rint(x) == sign(x) * rint(|x|) bit for bit
            return np.rint(sched, out=act)
        if rounding == "ceil":
            absf = np.abs(sched, out=h.mb2)
            np.ceil(absf, out=absf)
            return np.copysign(absf, sched, out=act)
        if rounding == "unbiased-edge":
            absf = np.abs(sched, out=h.mb2)
            np.floor(absf, out=act)
            np.subtract(absf, act, out=absf)  # fractional parts
            up = h.rng.random(sched.shape, dtype=h.dtype) < absf
            np.add(act, up, out=act)
            return np.copysign(act, sched, out=act)
        if rounding == "randomized-excess":
            return self._randomized_excess(h, sched)
        raise ConfigurationError(f"unsupported rounding {rounding!r}")

    def _randomized_excess(self, h: _BatchedHandle, sched: np.ndarray) -> np.ndarray:
        """The paper's excess-token rounding, vectorised across the batch.

        Floor every flow, pool each sender's fractional parts ``r``, then
        dispatch ``ceil(r)`` excess tokens, each landing on outgoing edge
        ``j`` with probability ``{Yhat_j} / ceil(r)`` and staying home
        otherwise (Observation 1).  No per-round sorting: the signed
        fractional parts are routed through the topology's fixed padded
        adjacency into ``max_degree`` dense cumulative planes, whose last
        plane *is* the surplus ``r``; every token then draws one uniform
        scaled to ``[0, c)`` and finds its slot by comparing against the
        planes.  A zero-width slot (no outgoing fraction) can never strictly
        contain a draw, so sub-``1e-9`` float fuzz needs no explicit cleanup
        here; ``c`` uses the same tolerance as the reference rounding.

        The joint token-count distribution is the reference scheme's
        multinomial exactly; only the generator's consumption order differs.
        """
        act = h.act
        B = h.n_replicas
        m = h.topo.m_edges
        if m == 0:
            return np.multiply(sched, 1.0, out=act)
        # Signed base and fractional parts in two passes:
        # trunc(x) == sign(x) * floor(|x|), and fsg = sched - trunc(sched).
        np.trunc(sched, out=act)
        fsg = np.subtract(sched, act, out=h.mb3)
        # Split into positive / negative outgoing-fraction blocks so a slot's
        # outgoing fraction is a single gather: P = max(fsg, 0), N = P - fsg.
        pn = h.pn
        p_block = pn[:m]
        np.maximum(fsg, 0.0, out=p_block)
        np.subtract(p_block, fsg, out=pn[m + 1 : 2 * m + 1])

        # Cumulative outgoing-fraction planes over the node's incident edges
        # (fixed permutation — no per-round sorting).
        planes = h.cum_planes
        np.take(pn, h.slot_take[0], axis=0, out=planes[0])
        for j in range(1, h.dmax):
            np.take(pn, h.slot_take[j], axis=0, out=planes[j])
            np.add(planes[j], planes[j - 1], out=planes[j])
        r = planes[h.dmax - 1]  # surplus per (node, replica)

        # Token budget c = ceil(r - tol): exactly 0 (well, -0.0) for senders
        # with no fractional surplus, so they emit no tokens.
        c = np.subtract(r, h.frac_tol, out=h.nb3)
        np.ceil(c, out=c)
        c_flat = c.ravel()
        counts = c_flat.astype(np.int64)
        tok_slot = np.repeat(h.slot_arange, counts)
        if tok_slot.size == 0:
            return act
        target = h.rng.random(tok_slot.size, dtype=h.dtype)
        np.multiply(target, c_flat[tok_slot], out=target)
        # slot index = number of cumulative planes <= target (searchsorted
        # 'right' over the sender's segment, zero-width slots skipped)
        planes_flat = planes.reshape(h.dmax, -1)
        pos = (planes_flat[0][tok_slot] <= target).view(np.uint8).astype(np.int64)
        for j in range(1, h.dmax):
            pos += planes_flat[j][tok_slot] <= target
        moved = np.flatnonzero(pos < h.dmax)  # the rest stay home
        if moved.size:
            tok_moved = tok_slot[moved]
            node = tok_moved // B
            col = tok_moved - node * B
            flat_slot = node * h.dmax + pos[moved]
            edge_ids = h.adj_edges_flat[flat_slot]
            signs = h.slot_dirs_flat[flat_slot]
            extra = np.bincount(
                edge_ids * B + col, weights=signs, minlength=m * B
            )
            np.add(act, extra.reshape(m, B), out=act)
        return act

    # ------------------------------------------------------------------
    # dynamic workloads
    # ------------------------------------------------------------------
    def _apply_arrivals(self, h: _BatchedHandle) -> ArrivalBatch:
        """Sample and apply one round of per-replica workload deltas.

        Counts are drawn per replica from its own spawned stream (the price
        of bit-exactness with the reference engine and ``DynamicSimulator``);
        clamping and application are vectorised across the whole ``(n, B)``
        batch.  The elementwise expression tree mirrors
        ``DynamicSimulator.inject`` exactly, so B=1 float64 runs agree bit
        for bit for deterministic roundings.
        """
        if h.arrivals_applied:
            raise SimulationError(
                f"arrivals already applied for round {h.round_index}"
            )
        topo, t = h.topo, h.round_index
        deltas = h.arr_deltas
        for b, (model, rng) in enumerate(zip(h.arrival_models, h.arrival_rngs)):
            deltas[:, b] = model.deltas(topo, t, rng)
        if not deltas.any():
            # Quiet round (e.g. a burst model between bursts): the RNG
            # streams were already consumed above, and applying all-zero
            # deltas is the identity, so skip the clamping passes.
            zeros = np.zeros(h.n_replicas)
            h.arrivals_applied = True
            h.last_arrival = ArrivalBatch(
                round_index=t, arrived=zeros, departed=zeros.copy(),
                clamped=zeros.copy(),
            )
            return h.last_arrival
        pos = np.maximum(deltas, 0.0, out=h.arr_pos)
        want = np.negative(deltas, out=h.arr_want)
        np.maximum(want, 0.0, out=want)
        # Consume at most the non-negative part of the current load (reuse
        # the deltas buffer — pos/want already extracted).
        relu_load = np.maximum(h.load, 0.0, out=deltas)
        actual = np.minimum(want, relu_load, out=h.arr_actual)
        np.add(h.load, pos, out=h.load)
        np.subtract(h.load, actual, out=h.load)
        arrived = pos.sum(axis=0, dtype=np.float64)
        departed = actual.sum(axis=0, dtype=np.float64)
        np.subtract(want, actual, out=want)
        clamped = want.sum(axis=0, dtype=np.float64)
        h.expected_totals += arrived
        h.expected_totals -= departed
        h.arrivals_applied = True
        h.last_arrival = ArrivalBatch(
            round_index=t, arrived=arrived, departed=departed, clamped=clamped
        )
        return h.last_arrival

    def _record_dynamic(self, h: _BatchedHandle) -> None:
        """Append this round's dynamic metrics (targets move with the total)."""
        i = h.dyn_count
        load = h.load
        cols = h.dyn_cols
        totals = load.sum(axis=0, dtype=np.float64)
        arrival = h.last_arrival
        cols["total_load"][i] = totals
        cols["arrived"][i] = arrival.arrived
        cols["departed"][i] = arrival.departed
        cols["clamped"][i] = arrival.clamped
        mean = totals / h.topo.n
        cols["max_minus_avg"][i] = load.max(axis=0) - mean
        cols["max_local_diff"][i] = self._mld(h)
        dev = np.subtract(load, mean.astype(h.dtype, copy=False), out=h.nb1)
        np.multiply(dev, dev, out=dev)
        cols["potential_per_node"][i] = dev.sum(axis=0, dtype=np.float64) / h.topo.n
        h.dyn_round[i] = h.round_index
        h.dyn_count = i + 1
        drift = np.abs(totals - h.expected_totals)
        bad = drift > h.conserve_tol * np.maximum(1.0, np.abs(h.expected_totals))
        if bad.any():
            b = int(np.argmax(bad))
            raise SimulationError(
                f"load not conserved in replica {b} by round {h.round_index}: "
                f"expected {h.expected_totals[b]}, got {totals[b]}"
            )

    def arrive(self, h: _BatchedHandle) -> ArrivalBatch:
        if h.arrival_models is None:
            raise ConfigurationError(
                "arrive() needs a dynamic run (config.arrivals was None)"
            )
        return self._apply_arrivals(h)

    # ------------------------------------------------------------------
    def _mld(self, h: _BatchedHandle) -> np.ndarray:
        """Per-replica max local load difference of the current loads."""
        if h.topo.m_edges == 0:
            return np.zeros(h.n_replicas)
        ediff = _csr_dot(h.E, h.load, h.mb3)
        np.abs(ediff, out=ediff)
        return ediff.max(axis=0)

    def _record_current(self, h: _BatchedHandle) -> None:
        """Append the Section VI metrics of the current state."""
        i = h.rec_count
        if i == h.rec_round.shape[0]:  # defensive; sized exactly in prepare
            h.rec_round = np.resize(h.rec_round, i * 2)
            h.rec_scheme = np.resize(h.rec_scheme, (i * 2, h.n_replicas))
            h.rec_cols = {
                k: np.resize(v, (i * 2, h.n_replicas)) for k, v in h.rec_cols.items()
            }
        load = h.load
        cols = h.rec_cols
        dev = np.subtract(load, h.targets, out=h.nb1)
        cols["max_minus_avg"][i] = dev.max(axis=0)
        cols["min_minus_avg"][i] = dev.min(axis=0)
        np.multiply(dev, dev, out=dev)
        cols["potential_per_node"][i] = dev.sum(axis=0) / h.topo.n
        cols["min_load"][i] = load.min(axis=0)
        totals = load.sum(axis=0)
        cols["total_load"][i] = totals
        cols["min_transient"][i] = h.last_min_transient
        cols["round_traffic"][i] = h.last_traffic
        h.last_mld = self._mld(h)
        cols["max_local_diff"][i] = h.last_mld
        h.rec_round[i] = h.round_index
        h.rec_scheme[i] = h.sos_active
        h.rec_count = i + 1
        h.last_recorded_round = h.round_index
        if h.loads_history is not None:
            h.loads_history.append(load.T.copy())
        drift = np.abs(totals - h.totals0)
        bad = drift > h.conserve_tol * np.maximum(1.0, np.abs(h.totals0))
        if bad.any():
            b = int(np.argmax(bad))
            raise SimulationError(
                f"load not conserved in replica {b} by round {h.round_index}: "
                f"{h.totals0[b]} -> {totals[b]}"
            )

    # ------------------------------------------------------------------
    def _check_switch(self, h: _BatchedHandle) -> None:
        """Vectorised hybrid SOS -> FOS policies (per replica)."""
        sw = h.switch
        t = h.round_index
        none = None
        if sw.kind == "fixed":
            newly = h.sos_active & (t >= int(sw.args[0]))
        elif sw.kind == "local-diff":
            threshold = float(sw.args[0]) if sw.args else 10.0
            min_rounds = int(sw.args[1]) if len(sw.args) > 1 else 1
            if t < min_rounds:
                newly = none
            else:
                mld = h.last_mld if h.last_recorded_round == t else self._mld(h)
                newly = h.sos_active & (mld <= threshold)
        elif sw.kind == "plateau":
            window = int(sw.args[0]) if sw.args else 50
            min_drop = float(sw.args[1]) if len(sw.args) > 1 else 0.2
            min_rounds = int(sw.args[2]) if len(sw.args) > 2 else 10
            mean = h.load.mean(axis=0)
            dev = np.subtract(h.load, mean, out=h.nb1)
            np.multiply(dev, dev, out=dev)
            phi = dev.sum(axis=0)
            hist = sw.phi_hist
            hist[sw.phi_count % window] = phi
            sw.phi_count += 1
            if t < min_rounds or sw.phi_count < window:
                newly = none
            else:
                oldest = hist[sw.phi_count % window]
                plateaued = (oldest <= 0.0) | (phi > (1.0 - min_drop) * oldest)
                newly = h.sos_active & plateaued
        else:
            raise ConfigurationError(f"unknown switch kind {sw.kind!r}")
        if newly is none:
            h.last_switched = np.zeros(h.n_replicas, dtype=bool)
            return
        h.last_switched = newly
        if newly.any():
            h.beta_row[0, newly] = 1.0
            h.sos_active[newly] = False
            h.switched_at[newly] = t

    # ==================================================================
    # protocol surface
    # ==================================================================
    def step(self, h: _BatchedHandle) -> StepBatch:
        self._advance(h, want_info=True)
        return StepBatch(
            round_index=h.round_index,
            loads=h.load.T.copy(),
            flows=h.flows.T.copy(),
            min_transient=h.last_min_transient.copy(),
            traffic=h.last_traffic.copy(),
            switched=h.last_switched.copy(),
        )

    def metrics(self, h: _BatchedHandle) -> RecordBatch:
        if h.arrival_models is not None:
            count = h.dyn_count
            return RecordBatch(
                dynamic_round_index=h.dyn_round[:count].copy(),
                dynamic_columns={
                    k: v[:count].copy() for k, v in h.dyn_cols.items()
                },
                final_loads=h.load.T.copy(),
                final_flows=h.flows.T.copy(),
                switched_at=h.switched_at.copy(),
            )
        if h.last_recorded_round != h.round_index:
            self._record_current(h)
        count = h.rec_count
        return RecordBatch(
            round_index=h.rec_round[:count].copy(),
            scheme_codes=h.rec_scheme[:count].copy(),
            columns={k: v[:count].copy() for k, v in h.rec_cols.items()},
            final_loads=h.load.T.copy(),
            final_flows=h.flows.T.copy(),
            switched_at=h.switched_at.copy(),
            loads_history=h.loads_history,
        )

    def run(self, topo, config, initial_loads):
        """Fused ensemble loop: transient/traffic info only where recorded."""
        if config.arrivals is not None:
            raise ConfigurationError(
                "config has arrival models; dynamic workloads run through "
                "run_dynamic()"
            )
        h = self.prepare(topo, config, initial_loads)
        record_every = config.record_every
        for r in range(1, config.rounds + 1):
            self._advance(h, want_info=(r % record_every == 0 or r == config.rounds))
        return self.metrics(h).results()

    def run_dynamic(self, topo, config, initial_loads):
        """Fused dynamic ensemble loop: arrivals + balancing, all replicas
        per vectorised step; transient/traffic info is never materialised
        (dynamic records do not carry it, exactly like ``DynamicSimulator``).
        """
        if config.arrivals is None:
            raise ConfigurationError(
                "run_dynamic() needs arrival models (set config.arrivals)"
            )
        h = self.prepare(topo, config, initial_loads)
        for _ in range(config.rounds):
            self._advance(h, want_info=False)
        return self.metrics(h).dynamic_results()
