"""Execution-engine protocol: one abstraction, many backends.

An :class:`Engine` runs a *batch* of independent replicas of the same
workload (topology + scheme + rounding) and produces one
:class:`~repro.core.simulator.SimulationResult` per replica.  The protocol
is deliberately tiny::

    handle = engine.prepare(topo, config, initial_loads)
    for _ in range(config.rounds):
        batch = engine.step(handle)        # StepBatch: loads/flows/transients
    results = engine.metrics(handle).results()

``engine.run(topo, config, initial_loads)`` wraps the loop (backends
override it with fused fast paths).  Four backends ship with the library:

* ``reference`` (:class:`~repro.engines.reference.ReferenceEngine`) — loops
  replicas through the incremental :class:`~repro.core.simulator.Simulator`
  core, one round at a time.  Semantics by definition.
* ``batched`` (:class:`~repro.engines.batched.BatchedVectorEngine`) — runs
  the whole ``(B, n)`` load matrix through CSR edge-wise numpy kernels; one
  vectorised step advances every replica at once.
* ``sharded`` (:class:`~repro.engines.sharded.ShardedEngine`) — splits the
  replica batch into contiguous column shards and runs one batched engine
  per worker *process*, merging the per-shard record batches; bit-identical
  to ``batched`` for any worker count.
* ``network`` (:class:`~repro.engines.network.NetworkEngine`) — adapts the
  message-passing :class:`~repro.network.engine.SyncNetwork` to the same
  protocol.

See ``docs/engines.md`` for the backend guide and ``docs/architecture.md``
for the batching model and how to add a backend.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from ..exceptions import ConfigurationError
from ..graphs.topology import Topology
from ..kernels import KERNEL_CHOICES
from ..core.hybrid import (
    FixedRoundSwitch,
    LocalDifferenceSwitch,
    PotentialPlateauSwitch,
    SwitchPolicy,
)
from ..core.simulator import SimulationResult

__all__ = [
    "EngineConfig",
    "ReplicaParams",
    "ResolvedReplicaParams",
    "StepBatch",
    "ArrivalBatch",
    "RecordBatch",
    "Engine",
    "ENGINES",
    "make_engine",
    "register_engine",
    "make_switch_policy",
    "apply_load_scales",
    "as_load_batch",
    "merge_record_batches",
    "parse_faults_spec",
    "parse_latency_spec",
    "plan_shards",
    "reject_async_only",
    "reject_batched_only",
    "reject_network_only",
    "reject_sharded_only",
    "resolve_arrival_models",
    "resolve_arrival_rngs",
    "resolve_record_fields",
    "resolve_replica_params",
    "resolve_rounding_rngs",
    "resolve_tile_size",
    "resolve_workers",
    "rounding_stream",
    "uniform_plane_value",
]

#: Scheme-name strings recorded in result tables, indexed by scheme code
#: (0 = first order, 1 = second order) — matching ``type(scheme).__name__``
#: of the matrix engine's scheme classes.
SCHEME_NAMES = np.array(["FirstOrderScheme", "SecondOrderScheme"], dtype="<U32")

#: The per-replica parameter planes a :class:`ReplicaParams` block carries.
REPLICA_PARAM_FIELDS = (
    "switch_rounds",
    "betas",
    "alpha_scales",
    "load_scales",
    "arrival_scales",
)


@dataclass
class ReplicaParams:
    """Per-replica parameter *planes*: one sweep value per replica column.

    Each field is ``None`` (every replica inherits the config-level value),
    a scalar (broadcast to the whole batch), or a length-``B`` sequence
    giving replica ``b`` its own value.  This is what turns a parameter
    sweep into a single engine call: the sweep axis becomes a plane that
    the vectorised backends fold into their kernels, the per-replica
    backends unfold into one simulator configuration per replica, and the
    sharded backend slices with its column shards — all four produce the
    same per-replica results.

    * ``switch_rounds`` — per-replica fixed SOS -> FOS switch round (the
      fig08 sweep axis); negative entries (or ``None`` entries in a
      sequence) mean "never switch".  Mutually exclusive with
      ``config.switch`` and with dynamic runs.
    * ``betas`` — per-replica SOS ``beta`` override (beta-sensitivity
      sweeps); every entry must lie in ``(0, 2)``.  Requires
      ``scheme="sos"``; ``beta = 1.0`` runs that replica as plain FOS.
    * ``alpha_scales`` — per-replica multiplier on the resolved per-edge
      alphas (diffusion-rate sensitivity); must be positive and finite.
    * ``load_scales`` — per-replica multiplier on the replica's initial
      load row, so one base load yields a whole initial-load family; must
      be finite.
    * ``arrival_scales`` — per-replica multiplier applied to the sampled
      workload deltas *before* clamping (arrival-rate sensitivity); must
      be ``>= 0``.  Requires ``config.arrivals``.
    """

    switch_rounds: Any = None
    betas: Any = None
    alpha_scales: Any = None
    load_scales: Any = None
    arrival_scales: Any = None


@dataclass(frozen=True)
class ResolvedReplicaParams:
    """A :class:`ReplicaParams` spec broadcast to concrete length-``B``
    planes (``None`` per field when that parameter does not vary)."""

    switch_rounds: Optional[np.ndarray] = None
    betas: Optional[np.ndarray] = None
    alpha_scales: Optional[np.ndarray] = None
    load_scales: Optional[np.ndarray] = None
    arrival_scales: Optional[np.ndarray] = None

    def shard(self, lo: int, hi: int) -> ReplicaParams:
        """The columns ``[lo, hi)`` of every plane, as a fresh spec.

        This is how the sharded engine hands each worker its slice of the
        parameter planes: resolved arrays are themselves valid specs.
        """
        return ReplicaParams(
            **{
                name: (
                    getattr(self, name)[lo:hi].copy()
                    if getattr(self, name) is not None
                    else None
                )
                for name in REPLICA_PARAM_FIELDS
            }
        )


def _switch_round_plane(value, n_replicas: Optional[int]) -> np.ndarray:
    """Broadcast a ``switch_rounds`` spec to an int64 plane (``-1`` = never)."""
    if np.ndim(value) == 0:
        entries = [value] * (n_replicas if n_replicas is not None else 1)
    else:
        entries = list(value)
        if n_replicas is not None and len(entries) != n_replicas:
            raise ConfigurationError(
                f"{len(entries)} replica_params.switch_rounds for "
                f"{n_replicas} replicas"
            )
    try:
        return np.array(
            [-1 if e is None else int(e) for e in entries], dtype=np.int64
        )
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"replica_params.switch_rounds must be integers or None, "
            f"got {value!r}: {exc}"
        ) from None


def _float_plane(value, n_replicas: Optional[int], name: str) -> np.ndarray:
    """Broadcast a float-valued replica plane, checking shape and finiteness."""
    if np.ndim(value) == 0:
        arr = np.full(
            n_replicas if n_replicas is not None else 1,
            float(value),
            dtype=np.float64,
        )
    else:
        arr = np.array(value, dtype=np.float64)
        if arr.ndim != 1:
            raise ConfigurationError(
                f"replica_params.{name} must be a scalar or a flat "
                f"per-replica sequence, got shape {arr.shape}"
            )
        if n_replicas is not None and arr.size != n_replicas:
            raise ConfigurationError(
                f"{arr.size} replica_params.{name} for {n_replicas} replicas"
            )
    if not np.all(np.isfinite(arr)):
        raise ConfigurationError(f"replica_params.{name} must be finite")
    return arr


def resolve_replica_params(
    spec, n_replicas: Optional[int] = None
) -> Optional[ResolvedReplicaParams]:
    """Normalise a config ``replica_params`` value to concrete planes.

    ``spec`` is ``None``, a :class:`ReplicaParams`, or a dict of its
    fields.  With ``n_replicas=None`` the spec is only parsed and
    range-checked (scalars validate as length-1 planes); with a batch size
    every plane is broadcast to length ``B``, and a sequence of any other
    length is rejected.  Returns ``None`` when no parameter varies.
    """
    if spec is None:
        return None
    if isinstance(spec, ResolvedReplicaParams):
        spec = ReplicaParams(
            **{name: getattr(spec, name) for name in REPLICA_PARAM_FIELDS}
        )
    elif isinstance(spec, dict):
        unknown = set(spec) - set(REPLICA_PARAM_FIELDS)
        if unknown:
            raise ConfigurationError(
                f"unknown replica_params fields {sorted(unknown)}; "
                f"known: {REPLICA_PARAM_FIELDS}"
            )
        spec = ReplicaParams(**spec)
    if not isinstance(spec, ReplicaParams):
        raise ConfigurationError(
            f"cannot interpret replica_params {spec!r}; pass a "
            "ReplicaParams or a dict of its fields"
        )
    planes: Dict[str, Optional[np.ndarray]] = {}
    planes["switch_rounds"] = (
        _switch_round_plane(spec.switch_rounds, n_replicas)
        if spec.switch_rounds is not None
        else None
    )
    for name in ("betas", "alpha_scales", "load_scales", "arrival_scales"):
        value = getattr(spec, name)
        planes[name] = (
            _float_plane(value, n_replicas, name) if value is not None else None
        )
    betas = planes["betas"]
    if betas is not None and not np.all((betas > 0.0) & (betas < 2.0)):
        raise ConfigurationError(
            f"replica_params.betas must lie in (0, 2), got {betas}"
        )
    alpha_scales = planes["alpha_scales"]
    if alpha_scales is not None and not np.all(alpha_scales > 0.0):
        raise ConfigurationError(
            "replica_params.alpha_scales must be positive"
        )
    arrival_scales = planes["arrival_scales"]
    if arrival_scales is not None and not np.all(arrival_scales >= 0.0):
        raise ConfigurationError(
            "replica_params.arrival_scales must be >= 0"
        )
    if all(v is None for v in planes.values()):
        return None
    return ResolvedReplicaParams(**planes)


def uniform_plane_value(arr: Optional[np.ndarray]) -> Optional[float]:
    """The single value of an all-equal plane; ``None`` if absent or varying."""
    if arr is None or arr.size == 0:
        return None
    if np.all(arr == arr[0]):
        return arr[0].item()
    return None


def apply_load_scales(
    loads: np.ndarray, params: Optional[ResolvedReplicaParams]
) -> np.ndarray:
    """Scale each replica's initial-load row by its ``load_scales`` entry.

    Every backend applies this to the same float64 ``(B, n)`` batch before
    any precision cast, so the scaled rows are bit-identical across
    engines.  Returns the input unchanged (not a copy) when no scales are
    set.
    """
    if params is None or params.load_scales is None:
        return loads
    return loads * params.load_scales[:, None]


@dataclass
class EngineConfig:
    """Workload description shared by every engine backend.

    Parameters mirror the classic ``LoadBalancingProcess`` + ``Simulator``
    stack: ``scheme`` is ``"fos"`` or ``"sos"`` (with ``beta``), ``rounding``
    is a :func:`repro.core.rounding.make_rounding` key, and ``switch``
    optionally describes the hybrid SOS -> FOS policy as a tuple:

    * ``("fixed", round)`` — every replica switches after ``round``,
    * ``("local-diff", threshold, min_rounds)`` — each replica switches once
      its own max local load difference drops to the threshold,
    * ``("plateau", window, min_drop, min_rounds)`` — each replica switches
      once its potential stops improving.

    ``seed`` is a base seed; replica ``b`` derives an independent stream
    from it, so runs are reproducible for any batch size.
    """

    scheme: str = "sos"
    beta: float = 1.0
    rounding: str = "randomized-excess"
    rounds: int = 100
    record_every: int = 1
    seed: int = 0
    speeds: Optional[np.ndarray] = None
    alphas: Any = None
    switch: Optional[Tuple] = None
    targets: Optional[np.ndarray] = None
    keep_loads: bool = False
    #: ``"float64"`` (default, bit-exact with the reference engine for
    #: deterministic roundings) or ``"float32"`` — the batched engine's
    #: ensemble-throughput mode.  Token counts and integral loads stay exact
    #: below 2**24; scheme coefficients are quantised at ~1e-7 relative, so
    #: float32 traces are a valid discrete process of the same family but
    #: not bit-identical to the float64 ones.  Only the batched backend
    #: accepts float32.
    precision: str = "float64"
    #: Dynamic-workload arrival hook: ``None`` (static run), one
    #: :class:`~repro.core.dynamic.ArrivalModel` (or spec string, see
    #: :func:`~repro.core.dynamic.make_arrival_model`) shared by every
    #: replica, or a sequence with one model/spec per replica.  A config
    #: with arrivals runs through :meth:`Engine.run_dynamic`; each round the
    #: engine applies clamped arrivals/departures before the balancing step
    #: and records the dynamic metric columns (every round — dynamic runs
    #: ignore ``record_every``).
    arrivals: Any = None
    #: Per-replica arrival stream keys: replica ``b`` draws arrivals from
    #: ``arrival_stream(seed, arrival_seeds[b])`` (default key: ``b``).
    #: Lets sweeps pin streams to seed *values* so a replica's trajectory
    #: does not depend on its batch position.
    arrival_seeds: Optional[Sequence[int]] = None
    #: Arrival-count sampling discipline of the batched engine: ``"stream"``
    #: (default) draws each replica's per-round counts from its own spawned
    #: stream — the cross-engine bit-exactness contract — while ``"batch"``
    #: draws the whole ``(n, B)`` count plane in one vectorised call from a
    #: dedicated batch stream.  Batch sampling lifts the per-node-Poisson
    #: sampling ceiling (~3x at B=128) at the documented price of replica
    #: trajectories that no longer match the reference engine stream for
    #: stream (they stay exactly distributed and reproducible per seed).
    #: Batched engine only; requires one shared arrival model.
    arrival_sampling: str = "stream"
    #: Static-run record columns to compute, as a subset of
    #: :data:`~repro.core.records.FLOAT_FIELDS`; ``None`` means all of them.
    #: Excluded columns are stored as NaN.  Dropping ``min_transient`` and
    #: ``round_traffic`` lets the batched engine skip the per-round
    #: transient/traffic kernels — and is the precondition for the
    #: closed-form ``identity``-rounding fast path.  Batched engine only;
    #: the per-replica backends always record every column.
    record_fields: Optional[Sequence[str]] = None
    #: Closed-form continuous fast path of the batched engine: ``"auto"``
    #: (default) engages it whenever eligible — ``identity`` rounding, no
    #: switch policy, no arrivals, and ``record_fields`` excluding
    #: ``min_transient``/``round_traffic`` — preferring the Fourier kernel
    #: on graphs that advertise one (full-wrap tori) and the one-matmul-
    #: per-round CSR kernel otherwise.  ``"never"`` disables it;
    #: ``"matmul"`` / ``"spectral"`` force a tier (raising when the config
    #: or graph is not eligible).
    fast_path: str = "auto"
    #: Kernel tier of the batched engine's discrete hot loop: ``"numpy"``
    #: (default) runs the vectorised numpy kernels, ``"numba"`` / ``"cffi"``
    #: force a compiled provider from :mod:`repro.kernels` (raising a
    #: ``ConfigurationError`` naming the ``[compiled]`` pip extra when the
    #: provider is unavailable or the config is not discrete), ``"python"``
    #: forces the pure-python reference provider (tests only), and
    #: ``"auto"`` picks the best available compiled provider — numba, then
    #: cffi — silently falling back to the numpy tier with a one-time
    #: ``repro.kernels`` log line.  Every provider is bit-identical to the
    #: numpy tier for every discrete rounding (stochastic roundings keep
    #: consuming the same pre-drawn per-replica RNG planes).  Batched and
    #: sharded engines only.
    kernel: str = "numpy"
    #: Node-tile width of the batched engine's streaming kernels: ``None``
    #: (default) keeps the dense whole-``(n, B)`` scratch planes, an ``int``
    #: processes loads/arrivals/metric reductions and the excess-token
    #: planes in tiles of that many nodes, and ``"auto"`` derives the tile
    #: from ``memory_budget_mb``.  Tiled runs are bit-identical to dense
    #: runs whenever the summed quantities are integral (every discrete
    #: rounding); the continuous ``identity`` process agrees to accumulation
    #: accuracy.  Batched engine only.
    tile_size: Any = None
    #: Memory budget (MiB) for the *tiled scratch planes* when
    #: ``tile_size="auto"`` — the bound covers the per-tile node scratch and
    #: excess-token planes, not the O(n + m) state and operators.
    memory_budget_mb: float = 256.0
    #: ``"table"`` (default) stores every recorded round in dense columns;
    #: ``"summary"`` streams records through running min/max/sum/last
    #: aggregates (O(fields x B) memory regardless of round count) and
    #: returns single-row tables whose ``summary()`` carries the
    #: aggregates.  Batched engine only.
    record_mode: str = "table"
    #: Per-replica *rounding* stream keys of the vectorised backends:
    #: replica ``b`` draws its rounding randomness from
    #: ``rounding_stream(seed, replica_keys[b])`` (default key: ``b``).
    #: Like ``arrival_seeds``, this pins streams to key *values*, so a
    #: replica's trajectory does not depend on its batch position — the
    #: property the sharded engine uses to stay bit-identical to the
    #: single-process batched engine for any shard assignment.  Batched and
    #: sharded engines only.
    replica_keys: Optional[Sequence[int]] = None
    #: Worker-process count of the sharded engine: ``None``/``"auto"``
    #: derives it from the usable CPU count (capped at the replica count),
    #: an int pins it.  Sharded engine only — every other backend rejects a
    #: non-default value rather than silently running single-process.
    workers: Any = None
    #: Persistent worker pool of the sharded engine: ``None``/``False``
    #: (default) spawns fresh worker processes per call, ``True``/``"auto"``
    #: routes the call through the process-wide default
    #: :class:`~repro.engines.pool.ShardedWorkerPool` (workers persist
    #: across calls, load planes and record columns travel through
    #: ``multiprocessing.shared_memory``, prepared topologies/operators are
    #: cached per worker), and a :class:`ShardedWorkerPool` instance pins
    #: that pool.  Results stay bit-identical to the per-call sharded
    #: engine (and hence the batched engine).  Sharded engine only.
    pool: Any = None
    #: Per-replica parameter planes (:class:`ReplicaParams`, or a dict of
    #: its fields): switch round, beta, alpha scale, initial-load scale
    #: and arrival-rate scale per replica column.  This is the sweep
    #: surface — a whole fig08-style parameter sweep becomes *one* engine
    #: call whose replicas each carry their own sweep point.  All four
    #: backends honour it: the batched engine folds the planes into its
    #: vectorised kernels (and shards them with the columns under the
    #: sharded engine, bit-identity preserved), the per-replica backends
    #: configure each replica's simulator from its plane entries.
    replica_params: Any = None
    #: Link-latency model of the async engine: ``None`` (default) reads the
    #: topology's stamped ``link_latency``/``link_bandwidth`` attributes
    #: (falling back to the synchronous 0-latency regime when unstamped), a
    #: scalar forces that latency in rounds on every link, and a spec string
    #: draws per-link latencies from a distribution seeded by ``seed`` —
    #: ``"fixed:X"``, ``"uniform:LO,HI"`` or ``"exp:MEAN"`` (see
    #: :func:`parse_latency_spec`).  Async engine only — every other backend
    #: rejects a non-default value rather than silently running synchronous.
    latency_model: Any = None
    #: Bounded-staleness gate of the async engine: a node may not start
    #: round ``r`` until every neighbour's last heard-from round is at least
    #: ``r - 1 - max_skew``.  ``None`` (default) means unbounded skew; ``0``
    #: recovers lockstep neighbourhood synchrony.  Async engine only.
    max_skew: Optional[int] = None
    #: Latency-quantisation policy of the staleness engine: how fractional
    #: per-link latencies map onto the integer round buckets that index its
    #: delayed-view planes.  ``"ceil"`` (default) rounds delays up (a
    #: message is visible only once fully delivered — matches the event
    #: queue's first-usable round for every latency), ``"floor"`` and
    #: ``"nearest"`` round down / to the closest bucket, ``"exact"``
    #: refuses non-integer latencies outright (the bit-identity contract
    #: vs the async engine only holds where quantisation is a no-op).
    #: Staleness engine only — other backends reject a non-default value.
    latency_buckets: str = "ceil"
    #: Fault model applied to token transfers
    #: (:class:`~repro.network.faults.FaultModel`): drops bounce the tokens
    #: back to the sender, so load is conserved.  The engine binds any
    #: unseeded model to a generator derived from ``seed``, so fault
    #: schedules reproduce run-to-run.  Network and async engines only.
    faults: Any = None
    #: Topology-churn schedule (:class:`~repro.core.churn.ChurnSchedule`,
    #: a spec string — see :func:`~repro.core.churn.parse_churn_spec` —
    #: or ``None``): timed node crash/recovery, join/leave and edge
    #: add/remove events applied at the start of their round.  Crashing
    #: nodes hand their tokens to surviving neighbours (or freeze them
    #: until recovery, per the schedule's policy), so ``sum(loads)`` is
    #: conserved over the full node universe under any schedule.
    #: Supported by the reference, batched, network and async engines
    #: (the sharded engine and the compiled kernel tier reject it);
    #: requires default speeds/alphas/targets and is mutually exclusive
    #: with switch policies, replica_params, float32, tiling, streaming
    #: summaries and trimmed record fields.
    churn: Any = None

    def validate(self) -> "EngineConfig":
        """Check every field combination, raising ``ConfigurationError``
        on the first invalid one; returns ``self`` so call sites can chain
        (``config.validate()`` is the first thing every backend's
        ``prepare``/``run`` does)."""
        if self.scheme not in ("fos", "sos"):
            raise ConfigurationError(
                f"scheme must be 'fos' or 'sos', got {self.scheme!r}"
            )
        if self.precision not in ("float64", "float32"):
            raise ConfigurationError(
                f"precision must be 'float64' or 'float32', got {self.precision!r}"
            )
        if self.rounds < 0:
            raise ConfigurationError(f"rounds must be >= 0, got {self.rounds}")
        if self.record_every < 1:
            raise ConfigurationError(
                f"record_every must be >= 1, got {self.record_every}"
            )
        if self.switch is not None:
            make_switch_policy(self.switch)  # raises on malformed specs
        if self.arrivals is not None:
            resolve_arrival_models(self.arrivals)  # raises on malformed specs
            if self.switch is not None:
                raise ConfigurationError(
                    "dynamic runs (config.arrivals) do not support hybrid "
                    "switch specs"
                )
        elif self.arrival_seeds is not None:
            raise ConfigurationError(
                "arrival_seeds only applies to dynamic runs (set arrivals)"
            )
        if self.arrival_sampling not in ("stream", "batch"):
            raise ConfigurationError(
                "arrival_sampling must be 'stream' or 'batch', "
                f"got {self.arrival_sampling!r}"
            )
        if self.fast_path not in ("auto", "never", "matmul", "spectral"):
            raise ConfigurationError(
                "fast_path must be 'auto', 'never', 'matmul' or 'spectral', "
                f"got {self.fast_path!r}"
            )
        if self.kernel not in KERNEL_CHOICES:
            raise ConfigurationError(
                f"kernel must be one of {KERNEL_CHOICES}, got {self.kernel!r}"
            )
        resolve_record_fields(self.record_fields)  # raises on unknown fields
        if self.record_fields is not None and self.arrivals is not None:
            raise ConfigurationError(
                "record_fields applies to static runs only (dynamic runs "
                "record the fixed dynamic column set)"
            )
        if self.tile_size is not None and self.tile_size != "auto":
            if not isinstance(self.tile_size, (int, np.integer)) or self.tile_size < 1:
                raise ConfigurationError(
                    f"tile_size must be None, 'auto' or an int >= 1, "
                    f"got {self.tile_size!r}"
                )
        if not self.memory_budget_mb > 0:
            raise ConfigurationError(
                f"memory_budget_mb must be > 0, got {self.memory_budget_mb}"
            )
        if self.record_mode not in ("table", "summary"):
            raise ConfigurationError(
                f"record_mode must be 'table' or 'summary', got {self.record_mode!r}"
            )
        if self.workers is not None and self.workers != "auto":
            if not isinstance(self.workers, (int, np.integer)) or self.workers < 1:
                raise ConfigurationError(
                    f"workers must be None, 'auto' or an int >= 1, "
                    f"got {self.workers!r}"
                )
        if self.pool is not None and not isinstance(self.pool, bool):
            # Duck-typed so this module never imports the pool machinery:
            # any object exposing the pool's run surface qualifies.
            if self.pool != "auto" and not hasattr(self.pool, "run_batch"):
                raise ConfigurationError(
                    "pool must be None, a bool, 'auto' or a "
                    f"ShardedWorkerPool instance, got {self.pool!r}"
                )
        params = resolve_replica_params(self.replica_params)  # raises on bad specs
        if params is not None:
            if params.switch_rounds is not None:
                if self.switch is not None:
                    raise ConfigurationError(
                        "replica_params.switch_rounds and config.switch are "
                        "mutually exclusive (the per-replica rounds replace "
                        "the global policy)"
                    )
                if self.arrivals is not None:
                    raise ConfigurationError(
                        "dynamic runs (config.arrivals) do not support "
                        "per-replica switch rounds"
                    )
            if params.betas is not None and self.scheme != "sos":
                raise ConfigurationError(
                    "replica_params.betas needs scheme='sos' (beta is the "
                    "SOS momentum parameter; use beta=1.0 entries for FOS "
                    "replicas)"
                )
            if params.arrival_scales is not None and self.arrivals is None:
                raise ConfigurationError(
                    "replica_params.arrival_scales only applies to dynamic "
                    "runs (set arrivals)"
                )
        parse_latency_spec(self.latency_model)  # raises on malformed specs
        if self.max_skew is not None:
            if not isinstance(self.max_skew, (int, np.integer)) or self.max_skew < 0:
                raise ConfigurationError(
                    f"max_skew must be None or an int >= 0, got {self.max_skew!r}"
                )
        if self.latency_buckets not in ("ceil", "floor", "nearest", "exact"):
            raise ConfigurationError(
                "latency_buckets must be 'ceil', 'floor', 'nearest' or "
                f"'exact', got {self.latency_buckets!r}"
            )
        parse_faults_spec(self.faults)  # raises on malformed specs
        if self.churn is not None:
            from ..core.churn import parse_churn_spec

            parse_churn_spec(self.churn)  # raises on malformed specs
            offending = []
            if self.speeds is not None:
                offending.append("speeds")
            if self.alphas is not None:
                offending.append("alphas")
            if self.targets is not None:
                offending.append("targets")
            if self.switch is not None:
                offending.append("switch")
            if self.replica_params is not None:
                offending.append("replica_params")
            if self.precision != "float64":
                offending.append(f"precision={self.precision!r}")
            if self.tile_size is not None:
                offending.append("tile_size")
            if self.record_mode != "table":
                offending.append(f"record_mode={self.record_mode!r}")
            if self.record_fields is not None:
                offending.append("record_fields")
            if offending:
                raise ConfigurationError(
                    "churn runs need uniform speeds/alphas, moving active-"
                    "average targets and the dense float64 record path; "
                    "not supported with " + ", ".join(offending)
                )
        return self


def make_switch_policy(spec) -> Optional[SwitchPolicy]:
    """Build a fresh :class:`SwitchPolicy` from a config switch spec.

    Only declarative specs are accepted — each replica must get its own
    policy instance (stateful policies like the plateau window would
    otherwise interleave every replica's history through one object).
    """
    if spec is None:
        return None
    if isinstance(spec, SwitchPolicy):
        raise ConfigurationError(
            "pass a switch spec tuple (e.g. ('fixed', 500)) instead of a "
            "SwitchPolicy instance, so every replica gets an independent policy"
        )
    if not isinstance(spec, (tuple, list)) or not spec:
        raise ConfigurationError(f"cannot interpret switch spec {spec!r}")
    kind, *args = spec
    if kind == "fixed":
        return FixedRoundSwitch(*args)
    if kind == "local-diff":
        return LocalDifferenceSwitch(*args)
    if kind == "plateau":
        return PotentialPlateauSwitch(*args)
    raise ConfigurationError(
        f"unknown switch kind {kind!r}; known: fixed, local-diff, plateau"
    )


def resolve_arrival_models(spec, n_replicas: Optional[int] = None) -> Optional[List]:
    """Normalise a config ``arrivals`` value to one model per replica.

    ``spec`` is ``None``, one :class:`~repro.core.dynamic.ArrivalModel` (or
    spec string) shared by every replica, or a sequence with one entry per
    replica.  With ``n_replicas=None`` the spec is only parsed/validated.
    Arrival models are stateless (all randomness flows through the per-call
    generator), so sharing one instance across replicas is sound.
    """
    from ..core.dynamic import ArrivalModel, make_arrival_model

    if spec is None:
        return None
    if isinstance(spec, (str, ArrivalModel)):
        model = make_arrival_model(spec)
        return [model] * n_replicas if n_replicas is not None else [model]
    if not isinstance(spec, (list, tuple)):
        raise ConfigurationError(
            f"cannot interpret arrivals {spec!r}; pass an ArrivalModel, a "
            "spec string, or a per-replica sequence of either"
        )
    models = [make_arrival_model(entry) for entry in spec]
    if not models:
        raise ConfigurationError("arrivals sequence must not be empty")
    if n_replicas is not None and len(models) != n_replicas:
        if len(models) == 1:
            return models * n_replicas
        raise ConfigurationError(
            f"{len(models)} arrival models for {n_replicas} replicas"
        )
    return models


def resolve_arrival_rngs(
    config: "EngineConfig", n_replicas: int
) -> List[np.random.Generator]:
    """Per-replica arrival generators following the engine stream layout.

    Replica ``b`` draws from ``arrival_stream(config.seed, key_b)`` with
    ``key_b = config.arrival_seeds[b]`` (default ``b``) — independent of the
    rounding streams and of the batch size.
    """
    from ..core.dynamic import arrival_streams

    keys = config.arrival_seeds
    if keys is None:
        return arrival_streams(config.seed, n_replicas)
    keys = [int(k) for k in keys]
    if len(keys) != n_replicas:
        raise ConfigurationError(
            f"{len(keys)} arrival_seeds for {n_replicas} replicas"
        )
    return arrival_streams(config.seed, keys)


def rounding_stream(seed: int, replica: int = 0) -> np.random.Generator:
    """Replica ``replica``'s rounding generator of the vectorised backends.

    ``default_rng(SeedSequence(seed, spawn_key=(replica, 1)))`` — the same
    spawn-key layout as :func:`~repro.core.dynamic.arrival_stream`, suffixed
    with ``1`` so rounding streams can never collide with arrival streams
    (one-element keys) or the batch arrival stream (``(0, 0)``).  Because
    the key is the replica's *identity* rather than its batch position, a
    replica draws the same stream in any batch composition — the invariant
    behind both batch-size-independent batched traces and the sharded
    engine's bit-identity to the batched one.
    """
    return np.random.default_rng(
        np.random.SeedSequence(int(seed), spawn_key=(int(replica), 1))
    )


def resolve_rounding_rngs(
    config: "EngineConfig", n_replicas: int
) -> List[np.random.Generator]:
    """Per-replica rounding generators following the engine stream layout.

    Replica ``b`` draws from ``rounding_stream(config.seed, key_b)`` with
    ``key_b = config.replica_keys[b]`` (default ``b``) — independent of the
    arrival streams and of the batch size.
    """
    keys = config.replica_keys
    if keys is None:
        keys = range(n_replicas)
    else:
        keys = [int(k) for k in keys]
        if len(keys) != n_replicas:
            raise ConfigurationError(
                f"{len(keys)} replica_keys for {n_replicas} replicas"
            )
    return [rounding_stream(config.seed, k) for k in keys]


def resolve_record_fields(spec) -> Tuple[str, ...]:
    """Normalise a config ``record_fields`` value to an ordered field tuple.

    ``None`` means every float record field.  Order follows the canonical
    :data:`~repro.core.records.FLOAT_FIELDS` order regardless of the spec's.
    """
    from ..core.records import FLOAT_FIELDS

    if spec is None:
        return tuple(FLOAT_FIELDS)
    wanted = set(spec)
    unknown = wanted - set(FLOAT_FIELDS)
    if unknown:
        raise ConfigurationError(
            f"unknown record fields {sorted(unknown)}; known: {FLOAT_FIELDS}"
        )
    if not wanted:
        raise ConfigurationError("record_fields must name at least one field")
    return tuple(f for f in FLOAT_FIELDS if f in wanted)


def resolve_tile_size(
    config: "EngineConfig",
    n: int,
    n_replicas: int,
    itemsize: int,
    planes: int = 0,
) -> Optional[int]:
    """Resolve a config ``tile_size`` to ``None`` (dense) or a node count.

    ``"auto"`` sizes the tile so the per-tile scratch — about four node-space
    planes plus ``planes`` excess-token planes, each ``tile x B x itemsize``
    bytes — fits the config's ``memory_budget_mb``.  The result is clamped to
    ``[1, n]``; a budget generous enough for the whole graph resolves to
    ``None`` (dense scratch is the exact same computation, minus the loop).
    """
    spec = config.tile_size
    if spec is None:
        return None
    if spec == "auto":
        per_node = (4 + planes) * n_replicas * itemsize
        tile = int(config.memory_budget_mb * 2**20) // max(per_node, 1)
        if tile >= n:
            return None
        return max(1, tile)
    return min(int(spec), n) if int(spec) < n else None


def reject_batched_only(config: "EngineConfig", engine_name: str) -> None:
    """Refuse batched-engine-only config features on per-replica backends.

    The scaling knobs (tiling, streaming summaries, trimmed record fields,
    batch-wide arrival sampling, forced fast-path tiers, pinned rounding
    stream keys) are implemented by the vectorised engines; silently
    ignoring them elsewhere would make cross-engine comparisons lie about
    what ran.
    """
    offending = []
    if config.arrival_sampling != "stream":
        offending.append(f"arrival_sampling={config.arrival_sampling!r}")
    if config.tile_size is not None:
        offending.append(f"tile_size={config.tile_size!r}")
    if config.record_mode != "table":
        offending.append(f"record_mode={config.record_mode!r}")
    if config.record_fields is not None:
        offending.append("record_fields")
    if config.fast_path in ("matmul", "spectral"):
        offending.append(f"fast_path={config.fast_path!r}")
    if config.replica_keys is not None:
        offending.append("replica_keys")
    if config.kernel not in ("numpy", "auto"):
        offending.append(f"kernel={config.kernel!r}")
    if offending:
        raise ConfigurationError(
            f"the {engine_name} engine does not support "
            + ", ".join(offending)
            + " (batched/sharded engines only)"
        )


def reject_sharded_only(config: "EngineConfig", engine_name: str) -> None:
    """Refuse sharded-engine-only config features on single-process backends.

    ``workers`` and ``pool`` describe a multiprocess execution plan; a
    backend that cannot honour them must say so instead of silently
    running one process.
    """
    offending = []
    if config.workers is not None:
        offending.append(f"workers={config.workers!r}")
    if config.pool is not None and config.pool is not False:
        offending.append(f"pool={config.pool!r}")
    if offending:
        raise ConfigurationError(
            f"the {engine_name} engine does not support "
            + ", ".join(offending)
            + " (sharded engine only)"
        )


def reject_async_only(config: "EngineConfig", engine_name: str) -> None:
    """Refuse async-engine-only config features on synchronous backends.

    ``latency_model`` and ``max_skew`` describe an event-driven delivery
    schedule; a synchronous-round backend that cannot honour them must say
    so instead of silently running at zero latency.  ``latency_buckets``
    names the staleness engine's quantisation policy and is refused
    separately — not even the async engine honours it.
    """
    offending = []
    if config.latency_model is not None:
        offending.append(f"latency_model={config.latency_model!r}")
    if config.max_skew is not None:
        offending.append(f"max_skew={config.max_skew!r}")
    if offending:
        raise ConfigurationError(
            f"the {engine_name} engine does not support "
            + ", ".join(offending)
            + " (async engine only)"
        )
    if config.latency_buckets != "ceil":
        raise ConfigurationError(
            f"the {engine_name} engine does not support "
            f"latency_buckets={config.latency_buckets!r} "
            "(staleness engine only)"
        )


def reject_network_only(config: "EngineConfig", engine_name: str) -> None:
    """Refuse message-passing-only config features on matrix backends.

    ``faults`` intercepts token-transfer messages; the vectorised backends
    have no messages to intercept and must refuse rather than silently run
    fault-free.
    """
    if config.faults is not None:
        raise ConfigurationError(
            f"the {engine_name} engine does not support "
            f"faults={config.faults!r} (network/async engines only)"
        )


def parse_latency_spec(spec):
    """Normalise a ``latency_model`` value; raises on malformed specs.

    Returns ``None``, ``("fixed", x)``, ``("uniform", lo, hi)`` or
    ``("exp", mean)``.  Accepted inputs: ``None``, a non-negative scalar,
    or the spec strings ``"fixed:X"`` / ``"uniform:LO,HI"`` / ``"exp:MEAN"``
    (a bare numeric string counts as fixed).
    """
    accepted = "'fixed:X', 'uniform:LO,HI' or 'exp:MEAN'"
    if spec is None:
        return None
    if isinstance(spec, (int, float, np.integer, np.floating)):
        x = float(spec)
        if not np.isfinite(x) or x < 0.0:
            raise ConfigurationError(
                f"latency must be finite and >= 0, got {spec!r} "
                f"(accepted forms: a non-negative scalar, {accepted})"
            )
        return ("fixed", x)
    if not isinstance(spec, str):
        raise ConfigurationError(
            f"latency_model must be None, a non-negative scalar or one of "
            f"the spec strings {accepted}, got {spec!r}"
        )
    kind, _, rest = spec.partition(":")
    try:
        if not _ and kind:  # bare number: "0.5"
            return parse_latency_spec(float(kind))
        if kind == "fixed":
            return parse_latency_spec(float(rest))
        if kind == "uniform":
            lo_s, _, hi_s = rest.partition(",")
            lo, hi = float(lo_s), float(hi_s)
            if not (0.0 <= lo <= hi and np.isfinite(hi)):
                raise ConfigurationError(
                    f"uniform latency needs 0 <= LO <= HI, got {spec!r} "
                    f"(accepted forms: {accepted})"
                )
            return ("uniform", lo, hi)
        if kind == "exp":
            mean = float(rest)
            if not (np.isfinite(mean) and mean >= 0.0):
                raise ConfigurationError(
                    f"exp latency needs MEAN >= 0, got {spec!r} "
                    f"(accepted forms: {accepted})"
                )
            return ("exp", mean)
    except ValueError:
        pass  # float() parse failures fall through to the catch-all below
    raise ConfigurationError(
        f"cannot interpret latency spec {spec!r}; accepted forms: "
        f"{accepted} (or a bare non-negative number)"
    )


def parse_faults_spec(spec):
    """Build a :class:`~repro.network.faults.FaultModel` from a CLI-style
    spec string; raises on malformed specs.

    Accepted inputs (a :class:`FaultModel` instance and ``None`` pass
    through):

    * ``"none"`` — :class:`~repro.network.faults.NoFaults`,
    * ``"drop:P"`` — :class:`~repro.network.faults.RandomLinkDrop` with
      per-message drop probability ``P``,
    * ``"outage:U:V:START[:END]"`` — :class:`~repro.network.faults.LinkOutage`
      taking link ``{U, V}`` down from round ``START`` (inclusive) to
      ``END`` (exclusive; omitted = forever).
    """
    if spec is None:
        return None
    from ..network.faults import (
        FaultModel,
        LinkOutage,
        NoFaults,
        RandomLinkDrop,
    )

    if isinstance(spec, FaultModel):
        return spec
    if not isinstance(spec, str):
        raise ConfigurationError(
            f"faults must be None, a FaultModel or a spec string "
            f"(none | drop:P | outage:U:V:START[:END]), got {spec!r}"
        )
    kind, _, rest = spec.strip().partition(":")
    kind = kind.strip().lower()
    try:
        if kind == "none":
            return NoFaults()
        if kind == "drop":
            return RandomLinkDrop(float(rest))
        if kind == "outage":
            parts = rest.split(":")
            if len(parts) not in (3, 4):
                raise ConfigurationError(
                    f"outage spec is outage:U:V:START[:END], got {spec!r}"
                )
            end = int(parts[3]) if len(parts) == 4 else None
            return LinkOutage(
                [(int(parts[0]), int(parts[1]))], start=int(parts[2]), end=end
            )
    except ValueError as exc:  # int()/float() parse failures
        raise ConfigurationError(f"bad faults spec {spec!r}: {exc}") from None
    raise ConfigurationError(
        f"unknown faults spec {spec!r}; known: none, drop:P, "
        f"outage:U:V:START[:END]"
    )


def resolve_workers(spec, n_replicas: int) -> int:
    """Resolve a config ``workers`` value to a concrete process count.

    ``None`` / ``"auto"`` takes the usable CPU count (the scheduling
    affinity mask where the platform exposes one, so container CPU limits
    are respected); the result is always capped at the replica count —
    an empty shard would do no work — and floored at 1.
    """
    if spec is None or spec == "auto":
        try:
            workers = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux platforms
            workers = os.cpu_count() or 1
    else:
        workers = int(spec)
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {spec!r}")
    return max(1, min(workers, int(n_replicas)))


def plan_shards(n_replicas: int, n_shards: int) -> List[Tuple[int, int]]:
    """Contiguous near-equal column shards ``[lo, hi)`` covering a batch.

    The first ``n_replicas % n_shards`` shards take one extra replica, so
    shard sizes differ by at most one; shard boundaries carry no semantic
    weight (per-replica streams are keyed by global replica index, so any
    split yields identical trajectories).
    """
    if n_replicas < 1:
        raise ConfigurationError(f"n_replicas must be >= 1, got {n_replicas}")
    if not 1 <= n_shards <= n_replicas:
        raise ConfigurationError(
            f"n_shards must be in [1, {n_replicas}], got {n_shards}"
        )
    base, extra = divmod(n_replicas, n_shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for i in range(n_shards):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def as_load_batch(initial_loads: np.ndarray, n: int) -> np.ndarray:
    """Normalise initial loads to a ``(B, n)`` float64 matrix."""
    loads = np.asarray(initial_loads, dtype=np.float64)
    if loads.ndim == 1:
        loads = loads[None, :]
    if loads.ndim != 2 or loads.shape[1] != n:
        raise ConfigurationError(
            f"initial loads have shape {np.shape(initial_loads)}, "
            f"expected (n,) or (B, n) with n={n}"
        )
    return loads


@dataclass(frozen=True)
class StepBatch:
    """Everything that happened in one synchronous round, batch-wide.

    ``loads``/``flows`` are ``(B, n)`` / ``(B, m)`` snapshots *after* the
    round; ``min_transient`` and ``traffic`` are per-replica scalars for the
    round itself.  ``switched`` flags replicas whose hybrid policy fired at
    this round.
    """

    round_index: int
    loads: np.ndarray
    flows: np.ndarray
    min_transient: np.ndarray
    traffic: np.ndarray
    switched: np.ndarray


@dataclass(frozen=True)
class ArrivalBatch:
    """What the per-round arrival hook did, batch-wide.

    ``round_index`` is the (pre-step) round the arrivals precede;
    ``arrived`` / ``departed`` / ``clamped`` are per-replica token totals —
    created tokens, actually consumed tokens, and the requested consumption
    refused because the node had no non-negative load left.
    """

    round_index: int
    arrived: np.ndarray
    departed: np.ndarray
    clamped: np.ndarray


@dataclass
class RecordBatch:
    """Recorded metric columns of a finished batch run.

    ``columns`` maps each float record field to a ``(rounds_recorded, B)``
    array; ``round_index`` is shared across replicas, ``scheme_codes``
    indexes :data:`SCHEME_NAMES` per record per replica.  ``results()``
    slices the batch into per-replica
    :class:`~repro.core.simulator.SimulationResult` objects backed by
    columnar :class:`~repro.core.records.RecordTable` storage — or returns
    pre-built results directly when a backend supplies them.
    """

    round_index: Optional[np.ndarray] = None
    scheme_codes: Optional[np.ndarray] = None
    columns: Optional[Dict[str, np.ndarray]] = None
    final_loads: Optional[np.ndarray] = None
    final_flows: Optional[np.ndarray] = None
    switched_at: Optional[np.ndarray] = None
    loads_history: Optional[List[np.ndarray]] = None
    prebuilt: Optional[List[SimulationResult]] = None
    #: Streaming-summary storage (``record_mode="summary"``): running
    #: aggregates instead of dense columns, plus the last scheme codes.
    summary_stats: Optional[object] = None
    scheme_last: Optional[np.ndarray] = None
    #: Dynamic-run storage: per-round index plus ``(rounds, B)`` dynamic
    #: metric columns (batched backend), or pre-built per-replica results.
    dynamic_round_index: Optional[np.ndarray] = None
    dynamic_columns: Optional[Dict[str, np.ndarray]] = None
    dynamic_summary_stats: Optional[object] = None
    prebuilt_dynamic: Optional[List] = None

    def dynamic_results(self) -> List:
        """Per-replica :class:`~repro.core.dynamic.DynamicResult` objects."""
        if self.prebuilt_dynamic is not None:
            return self.prebuilt_dynamic
        from ..core.dynamic import DynamicResult
        from ..core.records import DYNAMIC_FLOAT_FIELDS, DynamicRecordTable
        from ..core.state import LoadState

        if self.dynamic_summary_stats is not None:
            stats = self.dynamic_summary_stats
            rounds = max(stats.last_round, 0)
            return [
                DynamicResult(
                    table=DynamicRecordTable.from_summary(
                        stats.last_round,
                        {f: stats.last[f][b] for f in stats.fields},
                        stats.replica_summary(b, DYNAMIC_FLOAT_FIELDS),
                    ),
                    final_state=LoadState(
                        load=self.final_loads[b],
                        flows=self.final_flows[b],
                        round_index=rounds,
                    ),
                )
                for b in range(self.final_loads.shape[0])
            ]
        if self.dynamic_columns is None:
            raise ConfigurationError(
                "this run recorded no dynamic columns (config.arrivals was "
                "None); use results() for static runs"
            )
        n_replicas = self.final_loads.shape[0]
        rounds = (
            int(self.dynamic_round_index[-1])
            if self.dynamic_round_index.size
            else 0
        )
        out: List[DynamicResult] = []
        for b in range(n_replicas):
            table = DynamicRecordTable.from_columns(
                self.dynamic_round_index,
                {name: col[:, b] for name, col in self.dynamic_columns.items()},
            )
            out.append(
                DynamicResult(
                    table=table,
                    final_state=LoadState(
                        load=self.final_loads[b],
                        flows=self.final_flows[b],
                        round_index=rounds,
                    ),
                )
            )
        return out

    def results(self) -> List[SimulationResult]:
        """Per-replica :class:`~repro.core.simulator.SimulationResult`
        objects of a static run — sliced out of the columnar storage, or
        returned directly when a backend supplied pre-built results."""
        if self.prebuilt is not None:
            return self.prebuilt
        from ..core.records import RecordTable
        from ..core.state import LoadState

        if self.summary_stats is not None:
            return self._summary_results()
        n_replicas = self.final_loads.shape[0]
        rounds = int(self.round_index[-1]) if self.round_index.size else 0
        out: List[SimulationResult] = []
        for b in range(n_replicas):
            table = RecordTable.from_columns(
                self.round_index,
                SCHEME_NAMES[self.scheme_codes[:, b]],
                {name: col[:, b] for name, col in self.columns.items()},
            )
            switched = (
                int(self.switched_at[b]) if self.switched_at[b] >= 0 else None
            )
            history = (
                [snap[b] for snap in self.loads_history]
                if self.loads_history is not None
                else None
            )
            out.append(
                SimulationResult(
                    table=table,
                    final_state=LoadState(
                        load=self.final_loads[b],
                        flows=self.final_flows[b],
                        round_index=rounds,
                    ),
                    switched_at=switched,
                    loads_history=history,
                )
            )
        return out

    def _summary_results(self) -> List[SimulationResult]:
        """Streaming-mode results: single-row tables carrying the aggregates."""
        from ..core.records import FLOAT_FIELDS, RecordTable
        from ..core.state import LoadState

        stats = self.summary_stats
        rounds = max(stats.last_round, 0)
        out: List[SimulationResult] = []
        for b in range(self.final_loads.shape[0]):
            table = RecordTable.from_summary(
                stats.last_round,
                str(SCHEME_NAMES[self.scheme_last[b]]),
                {f: stats.last[f][b] for f in stats.fields},
                stats.replica_summary(b, FLOAT_FIELDS),
            )
            switched = (
                int(self.switched_at[b]) if self.switched_at[b] >= 0 else None
            )
            history = (
                [snap[b] for snap in self.loads_history]
                if self.loads_history is not None
                else None
            )
            out.append(
                SimulationResult(
                    table=table,
                    final_state=LoadState(
                        load=self.final_loads[b],
                        flows=self.final_flows[b],
                        round_index=rounds,
                    ),
                    switched_at=switched,
                    loads_history=history,
                )
            )
        return out


def _merge_columns(
    batches: Sequence["RecordBatch"], attr: str
) -> Optional[Dict[str, np.ndarray]]:
    """Width-concatenate one column-dict attribute across shard batches."""
    first = getattr(batches[0], attr)
    if first is None:
        return None
    return {
        name: np.hstack([getattr(b, attr)[name] for b in batches])
        for name in first
    }


def merge_record_batches(batches: Sequence["RecordBatch"]) -> "RecordBatch":
    """Merge per-shard :class:`RecordBatch` objects along the replica axis.

    The inverse of splitting a ``(B, n)`` batch into column shards: record
    columns ``(rounds, B_shard)`` are h-stacked, per-replica vectors and
    final states are concatenated, streaming summaries merge through
    :meth:`~repro.core.records.StreamingStats.concat`, and pre-built
    per-replica results simply chain.  Every shard must come from the same
    workload (same rounds, same record grid) — mismatched record grids
    raise, because silently aligning them would fabricate data.
    """
    from ..core.records import StreamingStats

    batches = list(batches)
    if not batches:
        raise ConfigurationError("merge_record_batches needs at least one batch")
    if len(batches) == 1:
        return batches[0]
    first = batches[0]
    if first.prebuilt is not None or first.prebuilt_dynamic is not None:
        return RecordBatch(
            prebuilt=(
                [r for b in batches for r in b.prebuilt]
                if first.prebuilt is not None
                else None
            ),
            prebuilt_dynamic=(
                [r for b in batches for r in b.prebuilt_dynamic]
                if first.prebuilt_dynamic is not None
                else None
            ),
        )
    for attr in ("round_index", "dynamic_round_index"):
        grid = getattr(first, attr)
        for other in batches[1:]:
            if (grid is None) != (getattr(other, attr) is None) or (
                grid is not None
                and not np.array_equal(grid, getattr(other, attr))
            ):
                raise ConfigurationError(
                    f"cannot merge record batches with different {attr} "
                    "grids (shards must run the same workload)"
                )
    loads_history = None
    if first.loads_history is not None:
        loads_history = [
            np.vstack([b.loads_history[i] for b in batches])
            for i in range(len(first.loads_history))
        ]
    concat = np.concatenate
    return RecordBatch(
        round_index=first.round_index,
        scheme_codes=(
            np.hstack([b.scheme_codes for b in batches])
            if first.scheme_codes is not None
            else None
        ),
        columns=_merge_columns(batches, "columns"),
        final_loads=np.vstack([b.final_loads for b in batches]),
        final_flows=np.vstack([b.final_flows for b in batches]),
        switched_at=(
            concat([b.switched_at for b in batches])
            if first.switched_at is not None
            else None
        ),
        loads_history=loads_history,
        summary_stats=(
            StreamingStats.concat([b.summary_stats for b in batches])
            if first.summary_stats is not None
            else None
        ),
        scheme_last=(
            concat([b.scheme_last for b in batches])
            if first.scheme_last is not None
            else None
        ),
        dynamic_round_index=first.dynamic_round_index,
        dynamic_columns=_merge_columns(batches, "dynamic_columns"),
        dynamic_summary_stats=(
            StreamingStats.concat([b.dynamic_summary_stats for b in batches])
            if first.dynamic_summary_stats is not None
            else None
        ),
    )


class Engine:
    """Base class of every execution backend."""

    #: Registry key (``make_engine`` name).
    name: str = ""

    def prepare(self, topo: Topology, config: EngineConfig, initial_loads):
        """Build a run handle for a batch of replicas."""
        raise NotImplementedError

    def step(self, handle) -> StepBatch:
        """Advance every replica one synchronous round."""
        raise NotImplementedError

    def arrive(self, handle) -> ArrivalBatch:
        """Per-round arrival hook of dynamic runs (``config.arrivals``).

        Samples every replica's workload deltas for the upcoming round from
        its own arrival stream and applies them — arrivals added, departures
        clamped at the non-negative current load — returning the exact token
        accounting.  Call once before each :meth:`step`; engines inject
        automatically if a dynamic run steps without the hook, and raise on
        a second call in the same round.
        """
        raise NotImplementedError

    def metrics(self, handle) -> RecordBatch:
        """Seal the run and return the recorded metric batch."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def run(
        self,
        topo: Topology,
        config: EngineConfig,
        initial_loads: np.ndarray,
    ) -> List[SimulationResult]:
        """Prepare, step ``config.rounds`` times, and collect results.

        Backends override this with fused fast paths; the default loop is
        the protocol reference implementation.
        """
        if config.arrivals is not None:
            raise ConfigurationError(
                "config has arrival models; dynamic workloads run through "
                "run_dynamic()"
            )
        handle = self.prepare(topo, config, initial_loads)
        for _ in range(config.rounds):
            self.step(handle)
        return self.metrics(handle).results()

    def run_dynamic(
        self,
        topo: Topology,
        config: EngineConfig,
        initial_loads: np.ndarray,
    ) -> List:
        """Run a dynamic workload: arrivals, then a balancing step, per round.

        Requires ``config.arrivals``; returns one
        :class:`~repro.core.dynamic.DynamicResult` per replica, recorded
        every round against the current (moving) average.  Backends may
        override with fused fast paths.
        """
        if config.arrivals is None:
            raise ConfigurationError(
                "run_dynamic() needs arrival models (set config.arrivals)"
            )
        handle = self.prepare(topo, config, initial_loads)
        for _ in range(config.rounds):
            self.arrive(handle)
            self.step(handle)
        return self.metrics(handle).dynamic_results()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


#: Engine registry: name -> class.  Populated by ``register_engine``.
ENGINES: Dict[str, Type[Engine]] = {}


def register_engine(cls: Type[Engine]) -> Type[Engine]:
    """Class decorator adding an engine backend to the registry."""
    if not cls.name:
        raise ConfigurationError(f"engine {cls.__name__} has no name")
    ENGINES[cls.name] = cls
    return cls


def make_engine(name) -> Engine:
    """Instantiate an engine backend by registry name (or pass through)."""
    if isinstance(name, Engine):
        return name
    try:
        return ENGINES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {name!r}; known: {sorted(ENGINES)}"
        ) from None
