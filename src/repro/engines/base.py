"""Execution-engine protocol: one abstraction, many backends.

An :class:`Engine` runs a *batch* of independent replicas of the same
workload (topology + scheme + rounding) and produces one
:class:`~repro.core.simulator.SimulationResult` per replica.  The protocol
is deliberately tiny::

    handle = engine.prepare(topo, config, initial_loads)
    for _ in range(config.rounds):
        batch = engine.step(handle)        # StepBatch: loads/flows/transients
    results = engine.metrics(handle).results()

``engine.run(topo, config, initial_loads)`` wraps the loop (backends
override it with fused fast paths).  Three backends ship with the library:

* ``reference`` (:class:`~repro.engines.reference.ReferenceEngine`) — loops
  replicas through the incremental :class:`~repro.core.simulator.Simulator`
  core, one round at a time.  Semantics by definition.
* ``batched`` (:class:`~repro.engines.batched.BatchedVectorEngine`) — runs
  the whole ``(B, n)`` load matrix through CSR edge-wise numpy kernels; one
  vectorised step advances every replica at once.
* ``network`` (:class:`~repro.engines.network.NetworkEngine`) — adapts the
  message-passing :class:`~repro.network.engine.SyncNetwork` to the same
  protocol.

See ``docs/architecture.md`` for the batching model and how to add a
backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from ..exceptions import ConfigurationError
from ..graphs.topology import Topology
from ..core.hybrid import (
    FixedRoundSwitch,
    LocalDifferenceSwitch,
    PotentialPlateauSwitch,
    SwitchPolicy,
)
from ..core.simulator import SimulationResult

__all__ = [
    "EngineConfig",
    "StepBatch",
    "ArrivalBatch",
    "RecordBatch",
    "Engine",
    "ENGINES",
    "make_engine",
    "register_engine",
    "make_switch_policy",
    "as_load_batch",
    "resolve_arrival_models",
    "resolve_arrival_rngs",
]

#: Scheme-name strings recorded in result tables, indexed by scheme code
#: (0 = first order, 1 = second order) — matching ``type(scheme).__name__``
#: of the matrix engine's scheme classes.
SCHEME_NAMES = np.array(["FirstOrderScheme", "SecondOrderScheme"], dtype="<U32")


@dataclass
class EngineConfig:
    """Workload description shared by every engine backend.

    Parameters mirror the classic ``LoadBalancingProcess`` + ``Simulator``
    stack: ``scheme`` is ``"fos"`` or ``"sos"`` (with ``beta``), ``rounding``
    is a :func:`repro.core.rounding.make_rounding` key, and ``switch``
    optionally describes the hybrid SOS -> FOS policy as a tuple:

    * ``("fixed", round)`` — every replica switches after ``round``,
    * ``("local-diff", threshold, min_rounds)`` — each replica switches once
      its own max local load difference drops to the threshold,
    * ``("plateau", window, min_drop, min_rounds)`` — each replica switches
      once its potential stops improving.

    ``seed`` is a base seed; replica ``b`` derives an independent stream
    from it, so runs are reproducible for any batch size.
    """

    scheme: str = "sos"
    beta: float = 1.0
    rounding: str = "randomized-excess"
    rounds: int = 100
    record_every: int = 1
    seed: int = 0
    speeds: Optional[np.ndarray] = None
    alphas: Any = None
    switch: Optional[Tuple] = None
    targets: Optional[np.ndarray] = None
    keep_loads: bool = False
    #: ``"float64"`` (default, bit-exact with the reference engine for
    #: deterministic roundings) or ``"float32"`` — the batched engine's
    #: ensemble-throughput mode.  Token counts and integral loads stay exact
    #: below 2**24; scheme coefficients are quantised at ~1e-7 relative, so
    #: float32 traces are a valid discrete process of the same family but
    #: not bit-identical to the float64 ones.  Only the batched backend
    #: accepts float32.
    precision: str = "float64"
    #: Dynamic-workload arrival hook: ``None`` (static run), one
    #: :class:`~repro.core.dynamic.ArrivalModel` (or spec string, see
    #: :func:`~repro.core.dynamic.make_arrival_model`) shared by every
    #: replica, or a sequence with one model/spec per replica.  A config
    #: with arrivals runs through :meth:`Engine.run_dynamic`; each round the
    #: engine applies clamped arrivals/departures before the balancing step
    #: and records the dynamic metric columns (every round — dynamic runs
    #: ignore ``record_every``).
    arrivals: Any = None
    #: Per-replica arrival stream keys: replica ``b`` draws arrivals from
    #: ``arrival_stream(seed, arrival_seeds[b])`` (default key: ``b``).
    #: Lets sweeps pin streams to seed *values* so a replica's trajectory
    #: does not depend on its batch position.
    arrival_seeds: Optional[Sequence[int]] = None

    def validate(self) -> "EngineConfig":
        if self.scheme not in ("fos", "sos"):
            raise ConfigurationError(
                f"scheme must be 'fos' or 'sos', got {self.scheme!r}"
            )
        if self.precision not in ("float64", "float32"):
            raise ConfigurationError(
                f"precision must be 'float64' or 'float32', got {self.precision!r}"
            )
        if self.rounds < 0:
            raise ConfigurationError(f"rounds must be >= 0, got {self.rounds}")
        if self.record_every < 1:
            raise ConfigurationError(
                f"record_every must be >= 1, got {self.record_every}"
            )
        if self.switch is not None:
            make_switch_policy(self.switch)  # raises on malformed specs
        if self.arrivals is not None:
            resolve_arrival_models(self.arrivals)  # raises on malformed specs
            if self.switch is not None:
                raise ConfigurationError(
                    "dynamic runs (config.arrivals) do not support hybrid "
                    "switch specs"
                )
        elif self.arrival_seeds is not None:
            raise ConfigurationError(
                "arrival_seeds only applies to dynamic runs (set arrivals)"
            )
        return self


def make_switch_policy(spec) -> Optional[SwitchPolicy]:
    """Build a fresh :class:`SwitchPolicy` from a config switch spec.

    Only declarative specs are accepted — each replica must get its own
    policy instance (stateful policies like the plateau window would
    otherwise interleave every replica's history through one object).
    """
    if spec is None:
        return None
    if isinstance(spec, SwitchPolicy):
        raise ConfigurationError(
            "pass a switch spec tuple (e.g. ('fixed', 500)) instead of a "
            "SwitchPolicy instance, so every replica gets an independent policy"
        )
    if not isinstance(spec, (tuple, list)) or not spec:
        raise ConfigurationError(f"cannot interpret switch spec {spec!r}")
    kind, *args = spec
    if kind == "fixed":
        return FixedRoundSwitch(*args)
    if kind == "local-diff":
        return LocalDifferenceSwitch(*args)
    if kind == "plateau":
        return PotentialPlateauSwitch(*args)
    raise ConfigurationError(
        f"unknown switch kind {kind!r}; known: fixed, local-diff, plateau"
    )


def resolve_arrival_models(spec, n_replicas: Optional[int] = None) -> Optional[List]:
    """Normalise a config ``arrivals`` value to one model per replica.

    ``spec`` is ``None``, one :class:`~repro.core.dynamic.ArrivalModel` (or
    spec string) shared by every replica, or a sequence with one entry per
    replica.  With ``n_replicas=None`` the spec is only parsed/validated.
    Arrival models are stateless (all randomness flows through the per-call
    generator), so sharing one instance across replicas is sound.
    """
    from ..core.dynamic import ArrivalModel, make_arrival_model

    if spec is None:
        return None
    if isinstance(spec, (str, ArrivalModel)):
        model = make_arrival_model(spec)
        return [model] * n_replicas if n_replicas is not None else [model]
    if not isinstance(spec, (list, tuple)):
        raise ConfigurationError(
            f"cannot interpret arrivals {spec!r}; pass an ArrivalModel, a "
            "spec string, or a per-replica sequence of either"
        )
    models = [make_arrival_model(entry) for entry in spec]
    if not models:
        raise ConfigurationError("arrivals sequence must not be empty")
    if n_replicas is not None and len(models) != n_replicas:
        if len(models) == 1:
            return models * n_replicas
        raise ConfigurationError(
            f"{len(models)} arrival models for {n_replicas} replicas"
        )
    return models


def resolve_arrival_rngs(
    config: "EngineConfig", n_replicas: int
) -> List[np.random.Generator]:
    """Per-replica arrival generators following the engine stream layout.

    Replica ``b`` draws from ``arrival_stream(config.seed, key_b)`` with
    ``key_b = config.arrival_seeds[b]`` (default ``b``) — independent of the
    rounding streams and of the batch size.
    """
    from ..core.dynamic import arrival_streams

    keys = config.arrival_seeds
    if keys is None:
        return arrival_streams(config.seed, n_replicas)
    keys = [int(k) for k in keys]
    if len(keys) != n_replicas:
        raise ConfigurationError(
            f"{len(keys)} arrival_seeds for {n_replicas} replicas"
        )
    return arrival_streams(config.seed, keys)


def as_load_batch(initial_loads: np.ndarray, n: int) -> np.ndarray:
    """Normalise initial loads to a ``(B, n)`` float64 matrix."""
    loads = np.asarray(initial_loads, dtype=np.float64)
    if loads.ndim == 1:
        loads = loads[None, :]
    if loads.ndim != 2 or loads.shape[1] != n:
        raise ConfigurationError(
            f"initial loads have shape {np.shape(initial_loads)}, "
            f"expected (n,) or (B, n) with n={n}"
        )
    return loads


@dataclass(frozen=True)
class StepBatch:
    """Everything that happened in one synchronous round, batch-wide.

    ``loads``/``flows`` are ``(B, n)`` / ``(B, m)`` snapshots *after* the
    round; ``min_transient`` and ``traffic`` are per-replica scalars for the
    round itself.  ``switched`` flags replicas whose hybrid policy fired at
    this round.
    """

    round_index: int
    loads: np.ndarray
    flows: np.ndarray
    min_transient: np.ndarray
    traffic: np.ndarray
    switched: np.ndarray


@dataclass(frozen=True)
class ArrivalBatch:
    """What the per-round arrival hook did, batch-wide.

    ``round_index`` is the (pre-step) round the arrivals precede;
    ``arrived`` / ``departed`` / ``clamped`` are per-replica token totals —
    created tokens, actually consumed tokens, and the requested consumption
    refused because the node had no non-negative load left.
    """

    round_index: int
    arrived: np.ndarray
    departed: np.ndarray
    clamped: np.ndarray


@dataclass
class RecordBatch:
    """Recorded metric columns of a finished batch run.

    ``columns`` maps each float record field to a ``(rounds_recorded, B)``
    array; ``round_index`` is shared across replicas, ``scheme_codes``
    indexes :data:`SCHEME_NAMES` per record per replica.  ``results()``
    slices the batch into per-replica
    :class:`~repro.core.simulator.SimulationResult` objects backed by
    columnar :class:`~repro.core.records.RecordTable` storage — or returns
    pre-built results directly when a backend supplies them.
    """

    round_index: Optional[np.ndarray] = None
    scheme_codes: Optional[np.ndarray] = None
    columns: Optional[Dict[str, np.ndarray]] = None
    final_loads: Optional[np.ndarray] = None
    final_flows: Optional[np.ndarray] = None
    switched_at: Optional[np.ndarray] = None
    loads_history: Optional[List[np.ndarray]] = None
    prebuilt: Optional[List[SimulationResult]] = None
    #: Dynamic-run storage: per-round index plus ``(rounds, B)`` dynamic
    #: metric columns (batched backend), or pre-built per-replica results.
    dynamic_round_index: Optional[np.ndarray] = None
    dynamic_columns: Optional[Dict[str, np.ndarray]] = None
    prebuilt_dynamic: Optional[List] = None

    def dynamic_results(self) -> List:
        """Per-replica :class:`~repro.core.dynamic.DynamicResult` objects."""
        if self.prebuilt_dynamic is not None:
            return self.prebuilt_dynamic
        if self.dynamic_columns is None:
            raise ConfigurationError(
                "this run recorded no dynamic columns (config.arrivals was "
                "None); use results() for static runs"
            )
        from ..core.dynamic import DynamicResult
        from ..core.records import DynamicRecordTable
        from ..core.state import LoadState

        n_replicas = self.final_loads.shape[0]
        rounds = (
            int(self.dynamic_round_index[-1])
            if self.dynamic_round_index.size
            else 0
        )
        out: List[DynamicResult] = []
        for b in range(n_replicas):
            table = DynamicRecordTable.from_columns(
                self.dynamic_round_index,
                {name: col[:, b] for name, col in self.dynamic_columns.items()},
            )
            out.append(
                DynamicResult(
                    table=table,
                    final_state=LoadState(
                        load=self.final_loads[b],
                        flows=self.final_flows[b],
                        round_index=rounds,
                    ),
                )
            )
        return out

    def results(self) -> List[SimulationResult]:
        if self.prebuilt is not None:
            return self.prebuilt
        from ..core.records import RecordTable
        from ..core.state import LoadState

        n_replicas = self.final_loads.shape[0]
        rounds = int(self.round_index[-1]) if self.round_index.size else 0
        out: List[SimulationResult] = []
        for b in range(n_replicas):
            table = RecordTable.from_columns(
                self.round_index,
                SCHEME_NAMES[self.scheme_codes[:, b]],
                {name: col[:, b] for name, col in self.columns.items()},
            )
            switched = (
                int(self.switched_at[b]) if self.switched_at[b] >= 0 else None
            )
            history = (
                [snap[b] for snap in self.loads_history]
                if self.loads_history is not None
                else None
            )
            out.append(
                SimulationResult(
                    table=table,
                    final_state=LoadState(
                        load=self.final_loads[b],
                        flows=self.final_flows[b],
                        round_index=rounds,
                    ),
                    switched_at=switched,
                    loads_history=history,
                )
            )
        return out


class Engine:
    """Base class of every execution backend."""

    #: Registry key (``make_engine`` name).
    name: str = ""

    def prepare(self, topo: Topology, config: EngineConfig, initial_loads):
        """Build a run handle for a batch of replicas."""
        raise NotImplementedError

    def step(self, handle) -> StepBatch:
        """Advance every replica one synchronous round."""
        raise NotImplementedError

    def arrive(self, handle) -> ArrivalBatch:
        """Per-round arrival hook of dynamic runs (``config.arrivals``).

        Samples every replica's workload deltas for the upcoming round from
        its own arrival stream and applies them — arrivals added, departures
        clamped at the non-negative current load — returning the exact token
        accounting.  Call once before each :meth:`step`; engines inject
        automatically if a dynamic run steps without the hook, and raise on
        a second call in the same round.
        """
        raise NotImplementedError

    def metrics(self, handle) -> RecordBatch:
        """Seal the run and return the recorded metric batch."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def run(
        self,
        topo: Topology,
        config: EngineConfig,
        initial_loads: np.ndarray,
    ) -> List[SimulationResult]:
        """Prepare, step ``config.rounds`` times, and collect results.

        Backends override this with fused fast paths; the default loop is
        the protocol reference implementation.
        """
        if config.arrivals is not None:
            raise ConfigurationError(
                "config has arrival models; dynamic workloads run through "
                "run_dynamic()"
            )
        handle = self.prepare(topo, config, initial_loads)
        for _ in range(config.rounds):
            self.step(handle)
        return self.metrics(handle).results()

    def run_dynamic(
        self,
        topo: Topology,
        config: EngineConfig,
        initial_loads: np.ndarray,
    ) -> List:
        """Run a dynamic workload: arrivals, then a balancing step, per round.

        Requires ``config.arrivals``; returns one
        :class:`~repro.core.dynamic.DynamicResult` per replica, recorded
        every round against the current (moving) average.  Backends may
        override with fused fast paths.
        """
        if config.arrivals is None:
            raise ConfigurationError(
                "run_dynamic() needs arrival models (set config.arrivals)"
            )
        handle = self.prepare(topo, config, initial_loads)
        for _ in range(config.rounds):
            self.arrive(handle)
            self.step(handle)
        return self.metrics(handle).dynamic_results()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


#: Engine registry: name -> class.  Populated by ``register_engine``.
ENGINES: Dict[str, Type[Engine]] = {}


def register_engine(cls: Type[Engine]) -> Type[Engine]:
    """Class decorator adding an engine backend to the registry."""
    if not cls.name:
        raise ConfigurationError(f"engine {cls.__name__} has no name")
    ENGINES[cls.name] = cls
    return cls


def make_engine(name) -> Engine:
    """Instantiate an engine backend by registry name (or pass through)."""
    if isinstance(name, Engine):
        return name
    try:
        return ENGINES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {name!r}; known: {sorted(ENGINES)}"
        ) from None
