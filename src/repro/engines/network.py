"""Message-passing adapter: :class:`SyncNetwork` behind the engine protocol.

Each replica is a full :class:`~repro.network.engine.SyncNetwork` of
autonomous nodes; the adapter drives the networks round by round and records
the same Section VI metrics as the matrix engines, computed from the global
trace (loads before/after each round plus the oriented flow vector).  For
deterministic roundings the recorded values are bit-identical to the
reference engine — the network equivalence suite proves it.

Only the ``("fixed", round)`` hybrid switch is supported: the distributed
engine implements the paper's *synchronous* switch, where every node flips
at an agreed round, and metric-triggered policies would need global
knowledge the nodes don't have.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..exceptions import ConfigurationError
from ..core.records import RecordTable
from ..core.simulator import SimulationResult, record_round
from ..core.state import LoadState, transient_loads
from ..core.metrics import target_loads
from ..graphs.speeds import uniform_speeds
from ..graphs.topology import Topology
from ..network.engine import SyncNetwork

from .base import (
    Engine,
    EngineConfig,
    RecordBatch,
    StepBatch,
    as_load_batch,
    register_engine,
)

__all__ = ["NetworkEngine"]


@dataclass
class _Replica:
    net: SyncNetwork
    table: RecordTable
    targets: np.ndarray
    loads_history: Optional[List[np.ndarray]]
    last_min_transient: float
    last_traffic: float = 0.0


@dataclass
class _NetworkHandle:
    topo: Topology
    config: EngineConfig
    switch_round: Optional[int]
    replicas: List[_Replica]


@register_engine
class NetworkEngine(Engine):
    """One :class:`SyncNetwork` per replica, driven in lockstep."""

    name = "network"

    def prepare(self, topo, config, initial_loads) -> _NetworkHandle:
        config.validate()
        if config.precision != "float64":
            raise ConfigurationError(
                "the network engine only supports precision='float64'"
            )
        loads = as_load_batch(initial_loads, topo.n)
        switch_round: Optional[int] = None
        if config.switch is not None:
            if not (
                isinstance(config.switch, (tuple, list))
                and len(config.switch) == 2
                and config.switch[0] == "fixed"
            ):
                raise ConfigurationError(
                    "the network engine only supports the ('fixed', round) "
                    f"switch spec, got {config.switch!r}"
                )
            switch_round = int(config.switch[1])
        speeds = (
            np.asarray(config.speeds, dtype=np.float64)
            if config.speeds is not None
            else uniform_speeds(topo.n)
        )
        replicas: List[_Replica] = []
        for b, load in enumerate(loads):
            net = SyncNetwork(
                topo,
                load,
                scheme=config.scheme,
                beta=config.beta if config.scheme == "sos" else 1.0,
                rounding=config.rounding,
                speeds=config.speeds,
                seed=config.seed + b,
                switch_to_fos_at=switch_round,
            )
            targets = (
                config.targets
                if config.targets is not None
                else target_loads(float(load.sum()), speeds)
            )
            replica = _Replica(
                net=net,
                table=RecordTable(config.rounds // config.record_every + 2),
                targets=targets,
                loads_history=[] if config.keep_loads else None,
                last_min_transient=float(load.min()),
            )
            self._record(
                topo,
                replica,
                load,
                np.zeros(topo.m_edges),
                0,
                "FirstOrderScheme" if config.scheme == "fos" else "SecondOrderScheme",
            )
            replicas.append(replica)
        return _NetworkHandle(
            topo=topo, config=config, switch_round=switch_round, replicas=replicas
        )

    # ------------------------------------------------------------------
    def _scheme_name(self, handle_or_config, round_index: int) -> str:
        config = (
            handle_or_config.config
            if isinstance(handle_or_config, _NetworkHandle)
            else handle_or_config
        )
        if config.scheme == "fos":
            return "FirstOrderScheme"
        switch = getattr(handle_or_config, "switch_round", None)
        if switch is not None and round_index > switch:
            return "FirstOrderScheme"
        return "SecondOrderScheme"

    def _record(
        self,
        topo: Topology,
        replica: _Replica,
        load: np.ndarray,
        flows: np.ndarray,
        round_index: int,
        scheme_name: str = "SecondOrderScheme",
    ) -> None:
        state = LoadState(load=load, flows=flows, round_index=round_index)
        record_round(
            replica.table,
            topo,
            state,
            replica.targets,
            scheme_name,
            replica.last_min_transient,
            replica.last_traffic,
        )
        if replica.loads_history is not None:
            replica.loads_history.append(load.copy())

    def _advance(self, handle: _NetworkHandle, replica: _Replica) -> None:
        topo = handle.topo
        before = replica.net.loads()
        replica.net.step()
        flows = replica.net.flows()
        replica.last_min_transient = float(
            transient_loads(topo, before, flows).min()
        )
        replica.last_traffic = float(np.abs(flows).sum())
        round_index = replica.net.round_index
        if round_index % handle.config.record_every == 0:
            self._record(
                topo,
                replica,
                replica.net.loads(),
                flows,
                round_index,
                self._scheme_name(handle, round_index),
            )

    # ------------------------------------------------------------------
    def step(self, handle: _NetworkHandle) -> StepBatch:
        for replica in handle.replicas:
            self._advance(handle, replica)
        round_index = handle.replicas[0].net.round_index
        return StepBatch(
            round_index=round_index,
            loads=np.stack([r.net.loads() for r in handle.replicas]),
            flows=np.stack([r.net.flows() for r in handle.replicas]),
            min_transient=np.array(
                [r.last_min_transient for r in handle.replicas]
            ),
            traffic=np.array([r.last_traffic for r in handle.replicas]),
            switched=np.full(
                len(handle.replicas),
                handle.switch_round == round_index
                and handle.config.scheme == "sos",
                dtype=bool,
            ),
        )

    def metrics(self, handle: _NetworkHandle) -> RecordBatch:
        results: List[SimulationResult] = []
        for replica in handle.replicas:
            net = replica.net
            round_index = net.round_index
            if replica.table.column("round_index")[-1] != round_index:
                self._record(
                    handle.topo,
                    replica,
                    net.loads(),
                    net.flows(),
                    round_index,
                    self._scheme_name(handle, round_index),
                )
            switched = (
                handle.switch_round
                if handle.config.scheme == "sos"
                and handle.switch_round is not None
                and handle.switch_round <= round_index
                else None
            )
            results.append(
                SimulationResult(
                    table=replica.table,
                    final_state=LoadState(
                        load=net.loads(),
                        flows=net.flows(),
                        round_index=round_index,
                    ),
                    switched_at=switched,
                    loads_history=replica.loads_history,
                )
            )
        return RecordBatch(prebuilt=results)
