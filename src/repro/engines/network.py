"""Message-passing adapter: :class:`SyncNetwork` behind the engine protocol.

Each replica is a full :class:`~repro.network.engine.SyncNetwork` of
autonomous nodes; the adapter drives the networks round by round and records
the same Section VI metrics as the matrix engines, computed from the global
trace (loads before/after each round plus the oriented flow vector).  For
deterministic roundings the recorded values are bit-identical to the
reference engine — the network equivalence suite proves it.

Only the ``("fixed", round)`` hybrid switch is supported: the distributed
engine implements the paper's *synchronous* switch, where every node flips
at an agreed round, and metric-triggered policies would need global
knowledge the nodes don't have.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError, SimulationError
from ..core.churn import (
    ChurnPlan,
    masked_dynamic_values,
    masked_static_values,
    resolve_churn,
)
from ..core.dynamic import ArrivalModel, DynamicResult, ScaledArrivals
from ..core.records import DynamicRecordTable, RecordTable
from ..core.simulator import SimulationResult, record_round
from ..core.state import LoadState, transient_loads
from ..core.metrics import (
    max_local_difference,
    max_minus_average,
    normalized_potential,
    target_loads,
)
from ..graphs.speeds import uniform_speeds
from ..graphs.topology import Topology
from ..network.engine import SyncNetwork

from .base import (
    ArrivalBatch,
    Engine,
    EngineConfig,
    RecordBatch,
    StepBatch,
    apply_load_scales,
    as_load_batch,
    parse_faults_spec,
    register_engine,
    resolve_arrival_models,
    resolve_arrival_rngs,
    resolve_replica_params,
    reject_async_only,
    reject_batched_only,
    reject_sharded_only,
)

__all__ = ["NetworkEngine"]


@dataclass
class _Replica:
    net: SyncNetwork
    table: RecordTable
    #: Balanced-target loads for record_round (None under churn, where the
    #: masked record helpers derive the live averages themselves).
    targets: Optional[np.ndarray]
    loads_history: Optional[List[np.ndarray]]
    last_min_transient: float
    last_traffic: float = 0.0
    #: This replica's synchronous SOS -> FOS switch round (None = never) —
    #: the global ``config.switch`` round, or its own
    #: ``replica_params.switch_rounds`` entry.
    switch_round: Optional[int] = None


@dataclass
class _NetworkHandle:
    topo: Topology
    config: EngineConfig
    replicas: List[_Replica]
    #: Compiled churn plan (None = static topology); ``topo`` then tracks
    #: the *live* universe-sized topology segment by segment.
    churn_plan: Optional[ChurnPlan] = None
    active: Optional[np.ndarray] = None
    active_idx: Optional[np.ndarray] = None
    patched_through: int = 0


@dataclass
class _DynamicNetReplica:
    net: SyncNetwork
    model: ArrivalModel
    rng: np.random.Generator
    table: DynamicRecordTable
    pending: Tuple[float, float, float] = (0.0, 0.0, 0.0)
    injected: bool = False
    last_min_transient: float = 0.0
    last_traffic: float = 0.0


@dataclass
class _DynamicNetworkHandle:
    topo: Topology
    config: EngineConfig
    replicas: List[_DynamicNetReplica]
    churn_plan: Optional[ChurnPlan] = None
    active: Optional[np.ndarray] = None
    active_idx: Optional[np.ndarray] = None
    patched_through: int = 0


@register_engine
class NetworkEngine(Engine):
    """One :class:`SyncNetwork` per replica, driven in lockstep."""

    name = "network"

    def prepare(self, topo, config, initial_loads):
        config.validate()
        reject_batched_only(config, 'network')
        reject_sharded_only(config, 'network')
        self._reject(config)
        if config.precision != "float64":
            raise ConfigurationError(
                "the network engine only supports precision='float64'"
            )
        loads = as_load_batch(initial_loads, topo.n)
        params = resolve_replica_params(config.replica_params, loads.shape[0])
        if params is not None and params.alpha_scales is not None:
            # SyncNetwork nodes derive their alphas from the topology's
            # default strategy and expose no override; silently ignoring the
            # plane would make cross-engine comparisons lie about what ran.
            raise ConfigurationError(
                "the network engine does not support "
                "replica_params.alpha_scales (use the reference or batched "
                "engine for alpha-scale sweeps)"
            )
        loads = apply_load_scales(loads, params)
        plan = resolve_churn(topo, config)
        if plan is not None:
            return self._prepare_churn(topo, config, loads, plan)
        if config.arrivals is not None:
            return self._prepare_dynamic(topo, config, loads, params)
        switch_round: Optional[int] = None
        if config.switch is not None:
            if not (
                isinstance(config.switch, (tuple, list))
                and len(config.switch) == 2
                and config.switch[0] == "fixed"
            ):
                raise ConfigurationError(
                    "the network engine only supports the ('fixed', round) "
                    f"switch spec, got {config.switch!r}"
                )
            switch_round = int(config.switch[1])
        speeds = (
            np.asarray(config.speeds, dtype=np.float64)
            if config.speeds is not None
            else uniform_speeds(topo.n)
        )
        replicas: List[_Replica] = []
        for b, load in enumerate(loads):
            switch_b = switch_round
            if params is not None and params.switch_rounds is not None:
                round_b = int(params.switch_rounds[b])
                switch_b = round_b if round_b >= 0 else None
            net = self._make_net(
                topo, config, load,
                beta=self._replica_beta(config, params, b),
                switch_round=switch_b,
                b=b,
            )
            targets = (
                config.targets
                if config.targets is not None
                else target_loads(float(load.sum()), speeds)
            )
            replica = _Replica(
                net=net,
                table=RecordTable(config.rounds // config.record_every + 2),
                targets=targets,
                loads_history=[] if config.keep_loads else None,
                last_min_transient=float(load.min()),
                switch_round=switch_b,
            )
            self._record(
                topo,
                replica,
                load,
                np.zeros(topo.m_edges),
                0,
                "FirstOrderScheme" if config.scheme == "fos" else "SecondOrderScheme",
            )
            replicas.append(replica)
        return _NetworkHandle(topo=topo, config=config, replicas=replicas)

    def _reject(self, config: EngineConfig) -> None:
        """Knob-guard hook: the synchronous engine refuses the async-only
        knobs (``faults`` is accepted — it threads into every replica's
        network, which binds unseeded models to seed-derived generators).
        The async subclass overrides this to accept the latency knobs."""
        reject_async_only(config, self.name)

    def _make_net(self, topo, config, load, beta, switch_round, b):
        """Build replica ``b``'s network — the async subclass's hook."""
        return SyncNetwork(
            topo,
            load,
            scheme=config.scheme,
            beta=beta,
            rounding=config.rounding,
            speeds=config.speeds,
            seed=config.seed + b,
            faults=parse_faults_spec(config.faults),
            switch_to_fos_at=switch_round,
        )

    @staticmethod
    def _replica_beta(config, params, b: int) -> float:
        if config.scheme != "sos":
            return 1.0
        if params is not None and params.betas is not None:
            return float(params.betas[b])
        return config.beta

    def _prepare_dynamic(
        self, topo, config, loads, params=None
    ) -> _DynamicNetworkHandle:
        models = resolve_arrival_models(config.arrivals, loads.shape[0])
        rngs = resolve_arrival_rngs(config, loads.shape[0])
        replicas: List[_DynamicNetReplica] = []
        for b, load in enumerate(loads):
            model = models[b]
            if params is not None and params.arrival_scales is not None:
                model = ScaledArrivals(model, float(params.arrival_scales[b]))
            net = self._make_net(
                topo, config, load,
                beta=self._replica_beta(config, params, b),
                switch_round=None,
                b=b,
            )
            replicas.append(
                _DynamicNetReplica(
                    net=net,
                    model=model,
                    rng=rngs[b],
                    table=DynamicRecordTable(max(config.rounds, 1) + 1),
                    last_min_transient=float(load.min()),
                )
            )
        return _DynamicNetworkHandle(topo=topo, config=config, replicas=replicas)

    # -- churn ---------------------------------------------------------
    def _prepare_churn(self, topo, config, loads, plan):
        """Build universe-sized networks and masked record tables.

        Every replica's :class:`SyncNetwork` spans the full node universe
        (``plan.n_univ`` nodes: the base graph plus every node a ``join``
        will ever add) on the round-0 live topology; not-yet-joined and
        crashed nodes are simply isolated, so they exchange no messages.
        Records mask them out exactly like the reference engine.
        """
        dynamic = config.arrivals is not None
        scheme_name = (
            "FirstOrderScheme" if config.scheme == "fos" else "SecondOrderScheme"
        )
        n_b = loads.shape[0]
        models = resolve_arrival_models(config.arrivals, n_b) if dynamic else None
        rngs = resolve_arrival_rngs(config, n_b) if dynamic else None
        replicas = []
        for b in range(n_b):
            load = plan.expand_load(loads[b])
            net = self._make_net(
                plan.topo0, config, load,
                beta=self._replica_beta(config, None, b),
                switch_round=None,
                b=b,
            )
            if dynamic:
                replicas.append(
                    _DynamicNetReplica(
                        net=net,
                        model=models[b],
                        rng=rngs[b],
                        table=DynamicRecordTable(max(config.rounds, 1) + 1),
                        last_min_transient=float(load[plan.active0_idx].min()),
                    )
                )
                continue
            replica = _Replica(
                net=net,
                table=RecordTable(config.rounds // config.record_every + 2),
                targets=None,
                loads_history=[load.copy()] if config.keep_loads else None,
                last_min_transient=float(load[plan.active0_idx].min()),
                switch_round=None,
            )
            replica.table.append(
                0,
                scheme_name,
                min_transient=replica.last_min_transient,
                round_traffic=0.0,
                **masked_static_values(plan.topo0, load, plan.active0_idx),
            )
            replicas.append(replica)
        cls = _DynamicNetworkHandle if dynamic else _NetworkHandle
        return cls(
            topo=plan.topo0,
            config=config,
            replicas=replicas,
            churn_plan=plan,
            active=plan.active0,
            active_idx=plan.active0_idx,
        )

    def _maybe_churn_net(self, handle) -> None:
        """Apply the churn patch for the round about to execute (once)."""
        plan = handle.churn_plan
        if plan is None:
            return
        r = handle.replicas[0].net.round_index + 1
        if handle.patched_through >= r:
            return
        handle.patched_through = r
        patch = plan.patch_at(r)
        if patch is None:
            return
        handle.topo = patch.topo
        handle.active = patch.active
        handle.active_idx = patch.active_idx
        for replica in handle.replicas:
            replica.net.apply_churn(patch)

    def _record_churn(
        self,
        handle: _NetworkHandle,
        replica: _Replica,
        load: np.ndarray,
        round_index: int,
        scheme_name: str,
    ) -> None:
        replica.table.append(
            round_index,
            scheme_name,
            min_transient=replica.last_min_transient,
            round_traffic=replica.last_traffic,
            **masked_static_values(handle.topo, load, handle.active_idx),
        )
        if replica.loads_history is not None:
            replica.loads_history.append(load.copy())

    # ------------------------------------------------------------------
    def _inject(self, handle: _DynamicNetworkHandle,
                replica: _DynamicNetReplica) -> Tuple[float, float, float]:
        """Sample one replica's deltas and deliver them as messages."""
        if replica.injected:
            raise SimulationError(
                f"arrivals already applied for round {replica.net.round_index}"
            )
        deltas = replica.model.deltas(
            handle.topo, replica.net.round_index, replica.rng
        )
        if handle.churn_plan is not None:
            # Sample with the full (unchurned) stream, then void arrivals
            # at inactive nodes — identical stream discipline to the
            # reference engine, so trajectories stay comparable.
            deltas = np.array(deltas, dtype=np.float64, copy=True)
            deltas[~handle.active] = 0.0
        replica.pending = replica.net.inject_work(deltas)
        replica.injected = True
        return replica.pending

    def _advance_dynamic(self, handle: _DynamicNetworkHandle,
                         replica: _DynamicNetReplica) -> None:
        if not replica.injected:
            self._inject(handle, replica)
        topo = handle.topo
        before = replica.net.loads()
        replica.net.step()
        flows = replica.net.flows()
        transients = transient_loads(topo, before, flows)
        if handle.churn_plan is not None:
            transients = transients[handle.active_idx]
        replica.last_min_transient = float(transients.min())
        replica.last_traffic = float(np.abs(flows).sum())
        loads = replica.net.loads()
        arrived, departed, clamped = replica.pending
        if handle.churn_plan is not None:
            replica.table.append(
                round_index=replica.net.round_index,
                arrived=arrived,
                departed=departed,
                clamped=clamped,
                **masked_dynamic_values(topo, loads, handle.active_idx),
            )
        else:
            replica.table.append(
                round_index=replica.net.round_index,
                total_load=float(loads.sum()),
                arrived=arrived,
                departed=departed,
                clamped=clamped,
                max_minus_avg=max_minus_average(loads),
                max_local_diff=max_local_difference(topo, loads),
                potential_per_node=normalized_potential(loads),
            )
        replica.injected = False

    def arrive(self, handle) -> ArrivalBatch:
        if not isinstance(handle, _DynamicNetworkHandle):
            raise ConfigurationError(
                "arrive() needs a dynamic run (config.arrivals was None)"
            )
        self._maybe_churn_net(handle)
        accounting = np.array(
            [self._inject(handle, replica) for replica in handle.replicas]
        ).reshape(len(handle.replicas), 3)
        return ArrivalBatch(
            round_index=handle.replicas[0].net.round_index,
            arrived=accounting[:, 0],
            departed=accounting[:, 1],
            clamped=accounting[:, 2],
        )

    # ------------------------------------------------------------------
    def _scheme_name(
        self,
        config: EngineConfig,
        switch_round: Optional[int],
        round_index: int,
    ) -> str:
        if config.scheme == "fos":
            return "FirstOrderScheme"
        if switch_round is not None and round_index > switch_round:
            return "FirstOrderScheme"
        return "SecondOrderScheme"

    def _record(
        self,
        topo: Topology,
        replica: _Replica,
        load: np.ndarray,
        flows: np.ndarray,
        round_index: int,
        scheme_name: str = "SecondOrderScheme",
    ) -> None:
        state = LoadState(load=load, flows=flows, round_index=round_index)
        record_round(
            replica.table,
            topo,
            state,
            replica.targets,
            scheme_name,
            replica.last_min_transient,
            replica.last_traffic,
        )
        if replica.loads_history is not None:
            replica.loads_history.append(load.copy())

    def _advance(self, handle: _NetworkHandle, replica: _Replica) -> None:
        topo = handle.topo
        before = replica.net.loads()
        replica.net.step()
        flows = replica.net.flows()
        transients = transient_loads(topo, before, flows)
        if handle.churn_plan is not None:
            transients = transients[handle.active_idx]
        replica.last_min_transient = float(transients.min())
        replica.last_traffic = float(np.abs(flows).sum())
        round_index = replica.net.round_index
        if round_index % handle.config.record_every == 0:
            if handle.churn_plan is not None:
                self._record_churn(
                    handle,
                    replica,
                    replica.net.loads(),
                    round_index,
                    self._scheme_name(handle.config, None, round_index),
                )
            else:
                self._record(
                    topo,
                    replica,
                    replica.net.loads(),
                    flows,
                    round_index,
                    self._scheme_name(
                        handle.config, replica.switch_round, round_index
                    ),
                )

    # ------------------------------------------------------------------
    def step(self, handle) -> StepBatch:
        self._maybe_churn_net(handle)
        if isinstance(handle, _DynamicNetworkHandle):
            for replica in handle.replicas:
                self._advance_dynamic(handle, replica)
            return StepBatch(
                round_index=handle.replicas[0].net.round_index,
                loads=np.stack([r.net.loads() for r in handle.replicas]),
                flows=np.stack([r.net.flows() for r in handle.replicas]),
                min_transient=np.array(
                    [r.last_min_transient for r in handle.replicas]
                ),
                traffic=np.array([r.last_traffic for r in handle.replicas]),
                switched=np.zeros(len(handle.replicas), dtype=bool),
            )
        for replica in handle.replicas:
            self._advance(handle, replica)
        round_index = handle.replicas[0].net.round_index
        return StepBatch(
            round_index=round_index,
            loads=np.stack([r.net.loads() for r in handle.replicas]),
            flows=np.stack([r.net.flows() for r in handle.replicas]),
            min_transient=np.array(
                [r.last_min_transient for r in handle.replicas]
            ),
            traffic=np.array([r.last_traffic for r in handle.replicas]),
            switched=np.array(
                [
                    r.switch_round == round_index
                    and handle.config.scheme == "sos"
                    for r in handle.replicas
                ],
                dtype=bool,
            ),
        )

    def metrics(self, handle) -> RecordBatch:
        if isinstance(handle, _DynamicNetworkHandle):
            return RecordBatch(
                prebuilt_dynamic=[
                    DynamicResult(
                        table=replica.table,
                        final_state=LoadState(
                            load=replica.net.loads(),
                            flows=replica.net.flows(),
                            round_index=replica.net.round_index,
                        ),
                    )
                    for replica in handle.replicas
                ]
            )
        results: List[SimulationResult] = []
        for replica in handle.replicas:
            net = replica.net
            round_index = net.round_index
            if replica.table.column("round_index")[-1] != round_index:
                if handle.churn_plan is not None:
                    self._record_churn(
                        handle,
                        replica,
                        net.loads(),
                        round_index,
                        self._scheme_name(handle.config, None, round_index),
                    )
                else:
                    self._record(
                        handle.topo,
                        replica,
                        net.loads(),
                        net.flows(),
                        round_index,
                        self._scheme_name(
                            handle.config, replica.switch_round, round_index
                        ),
                    )
            switched = (
                replica.switch_round
                if handle.config.scheme == "sos"
                and replica.switch_round is not None
                and replica.switch_round <= round_index
                else None
            )
            results.append(
                SimulationResult(
                    table=replica.table,
                    final_state=LoadState(
                        load=net.loads(),
                        flows=net.flows(),
                        round_index=round_index,
                    ),
                    switched_at=switched,
                    loads_history=replica.loads_history,
                )
            )
        return RecordBatch(prebuilt=results)
