"""Vectorised bounded-staleness engine: the async regime without the event
queue.

:class:`StalenessEngine` replays the event-driven
:class:`~repro.network.async_engine.AsyncNetwork` as a *round-synchronous*
vectorised process.  Per-link latencies are quantised into integer round
buckets (:func:`quantize_link_latency`), and the whole ``(n, B)`` replica
ensemble advances with delayed-view planes: a circular ring of the last
``D + 1`` announce planes (``D`` = deepest bucket), gathered per *arc* so
each node computes on neighbour loads exactly ``d`` rounds stale; shipped
tokens ride a second ring of bucketed shipment planes and land ``d``
rounds later; dropped shipments ride a third (bounce) ring back to their
sender after ``2 d`` rounds.  The ``max_skew`` gate becomes a vectorised
clamp on bucket depth (``d_eff = min(d, max_skew + 1)``), which is what
the gate enforces on view staleness in the event-driven engine.

Bit-identity contract
---------------------
The engine is **bit-identical to** :class:`AsyncNetwork` — same recorded
trajectories, flows, staleness statistics and conservation ledger — when
the event queue itself stays in per-round lockstep:

* every per-link latency is a non-negative **integer** number of rounds
  (so quantisation is a no-op — ``latency_buckets="exact"`` asserts it),
* ``max_skew`` is ``None``, or every bucket is ``<= max_skew`` (the gate
  then never fires, because a node has always heard round ``r - d`` from
  a ``d``-bucket neighbour by the end of round ``r``),
* the rounding is deterministic (``floor`` / ``nearest`` / ``ceil``).
  The stochastic roundings consume per-replica streams
  (:func:`~repro.engines.base.rounding_stream` — the batched engine's
  layout) instead of the per-node streams the network engines use, so
  they agree in distribution, not bit for bit.

Under those conditions every event of the queue lands at an integer
timestamp whose phase ordering this engine replays plane for plane:
announce (ring snapshot), compute (delayed-view gather + rounding),
deliver (shipment/bounce ring reads *after* the compute, matching the
event queue's ``PH_DELIVER > PH_COMPUTE`` phase order), finish (zeroing
remembered flows on quiet incoming arcs).  Fractional latencies or
buckets beyond the gate bound leave lockstep — there the engine is the
documented quantised approximation (``mean_staleness`` /
``max_staleness`` still track the bucket depths, and
``max_staleness <= max_skew + 1`` always holds).

Faults compose: per-message drops are applied as masks on the bucketed
shipment planes, consuming each replica's fault stream
(``default_rng([seed + key_b, FAULT_STREAM_KEY])``) in exactly the event
queue's arc order, so fault schedules match the async engine message for
message.  Token conservation is exact under any schedule:
``loads.sum() + in_flight_amount`` is constant (static) or moves only by
the injected arrival/departure totals (dynamic).

The engine accepts ``tile_size`` (bounding the excess-token dispatch
scratch exactly like the batched engine — tiled runs are bit-identical
to dense runs) and ``replica_keys`` (pinning fault/rounding streams to
replica identities), which is what lets the sharded engine split a
staleness batch into column shards bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError, SimulationError
from ..core.dynamic import ArrivalModel, DynamicResult, ScaledArrivals
from ..core.records import DynamicRecordTable, RecordTable
from ..core.simulator import SimulationResult, record_round
from ..core.state import LoadState, transient_loads
from ..core.metrics import (
    max_local_difference,
    max_minus_average,
    normalized_potential,
    target_loads,
)
from ..graphs.speeds import uniform_speeds, validate_speeds
from ..graphs.topology import Topology
from ..network.engine import FAULT_STREAM_KEY
from ..network.faults import LinkOutage, NoFaults, RandomLinkDrop
from ..network.messages import TokenTransfer

from .async_net import resolve_link_latency
from .base import (
    ArrivalBatch,
    Engine,
    EngineConfig,
    RecordBatch,
    StepBatch,
    apply_load_scales,
    as_load_batch,
    parse_faults_spec,
    register_engine,
    reject_sharded_only,
    resolve_arrival_models,
    resolve_arrival_rngs,
    resolve_replica_params,
    resolve_rounding_rngs,
    resolve_tile_size,
)
from .batched import _tiles, _token_uniforms

__all__ = ["StalenessEngine", "quantize_link_latency"]

#: Fractional-surplus tolerance of the excess-token rounding — the same
#: constant as ``repro.network.node._FRAC_TOL`` and the batched engine.
_FRAC_TOL = 1e-9

_STOCHASTIC_ROUNDINGS = ("unbiased-edge", "randomized-excess")
_KNOWN_ROUNDINGS = (
    "identity",
    "floor",
    "nearest",
    "ceil",
    "unbiased-edge",
    "randomized-excess",
)


def quantize_link_latency(latency, policy: str, m_edges: int) -> np.ndarray:
    """Quantise per-edge latencies into integer round buckets.

    ``latency`` is ``None`` (zero latency everywhere), a scalar or an
    ``(m_edges,)`` array of non-negative rounds.  ``policy`` maps
    fractional latencies onto buckets: ``"ceil"`` (first round the
    message is fully delivered — the event queue's first-usable round),
    ``"floor"``, ``"nearest"``, or ``"exact"`` (refuse fractional
    latencies outright: the bit-identity contract vs the async engine
    only holds where quantisation is a no-op).  Returns an int64 bucket
    array.
    """
    if latency is None:
        return np.zeros(m_edges, dtype=np.int64)
    arr = np.broadcast_to(np.asarray(latency, dtype=np.float64), (m_edges,))
    if not np.all(np.isfinite(arr)):
        raise ConfigurationError("link latency must be finite")
    if arr.size and np.any(arr < 0.0):
        raise ConfigurationError("link latency must be >= 0")
    if policy == "exact":
        buckets = np.rint(arr)
        if np.any(arr != buckets):
            raise ConfigurationError(
                "latency_buckets='exact' requires integer link latencies "
                "(the bit-identity regime); got fractional values — use "
                "'ceil', 'floor' or 'nearest' to quantise them"
            )
    elif policy == "ceil":
        buckets = np.ceil(arr)
    elif policy == "floor":
        buckets = np.floor(arr)
    elif policy == "nearest":
        buckets = np.rint(arr)
    else:
        raise ConfigurationError(
            "latency_buckets must be 'ceil', 'floor', 'nearest' or "
            f"'exact', got {policy!r}"
        )
    return buckets.astype(np.int64)


class _StalenessCore:
    """The ``(n, B)`` delayed-plane state machine (one step per round).

    All arrays are arc-major: arc ``a`` is the directed half-edge
    ``arc_src[a] -> arc_dst[a]``, sorted by ``(src, dst)`` (the CSR
    order), which is exactly the order the event queue processes
    per-node neighbour work in — node-ascending computes, sorted
    neighbours within each node.
    """

    def __init__(
        self,
        topo: Topology,
        speeds: np.ndarray,
        loads: np.ndarray,  # (n, B) float64, C-contiguous, owned
        scheme: str,
        betas: np.ndarray,  # (B,)
        switch_rounds: np.ndarray,  # (B,) int64, -1 = never
        rounding: str,
        d_edge: np.ndarray,  # (m,) int64 buckets, already skew-clamped
        fault_models: Optional[List] = None,
        rngs: Optional[List[np.random.Generator]] = None,
        tile: Optional[int] = None,
    ):
        if rounding not in _KNOWN_ROUNDINGS:
            raise ConfigurationError(f"unknown rounding {rounding!r}")
        self.topo = topo
        self.n = topo.n
        self.m = topo.m_edges
        self.B = loads.shape[1]
        self.speeds = np.asarray(speeds, dtype=np.float64)
        self.loads = loads
        self.scheme = scheme
        self.betas = np.asarray(betas, dtype=np.float64)
        self.bm1 = self.betas - 1.0
        self.switch_rounds = np.asarray(switch_rounds, dtype=np.int64)
        self.rounding = rounding
        self.fault_models = fault_models
        self.rngs = rngs
        self.tile = tile

        # -- arc structure out of the CSR adjacency --------------------
        n, B = self.n, self.B
        degrees = np.asarray(topo.degrees, dtype=np.int64)
        self.indptr = np.asarray(topo.adj_indptr, dtype=np.int64)
        self.arc_src = np.repeat(np.arange(n, dtype=np.int64), degrees)
        self.arc_dst = np.asarray(topo.adj_indices, dtype=np.int64)
        self.arc_edge = np.asarray(topo.adj_edge_ids, dtype=np.int64)
        self.n_arcs = int(self.arc_src.shape[0])
        na = self.n_arcs
        # Reverse-arc permutation: the arc with the k-th smallest
        # (dst, src) pair is the reverse of arc k, so one lexsort is the
        # whole involution.
        self.rev = np.lexsort((self.arc_src, self.arc_dst))
        # Per-edge arc ids for the engine-side flow record: the lower
        # endpoint's arc writes first, the higher endpoint's compute runs
        # later in node order and overwrites (the event queue's seq
        # ordering at one timestamp).
        is_lo = self.arc_src < self.arc_dst
        self.arc_of_lo = np.empty(self.m, dtype=np.int64)
        self.arc_of_hi = np.empty(self.m, dtype=np.int64)
        self.arc_of_lo[self.arc_edge[is_lo]] = np.flatnonzero(is_lo)
        self.arc_of_hi[self.arc_edge[~is_lo]] = np.flatnonzero(~is_lo)
        # The diffusion weight per arc — matches BalancerNode.receive_hello.
        self.alpha_arc = np.minimum(
            self.speeds[self.arc_src], self.speeds[self.arc_dst]
        ) / (np.maximum(degrees[self.arc_src], degrees[self.arc_dst]) + 1.0)

        # -- delay buckets and modular slot tables ---------------------
        self.d_edge = np.asarray(d_edge, dtype=np.int64)
        self.d_arc = self.d_edge[self.arc_edge] if na else np.zeros(0, np.int64)
        self.D = int(self.d_arc.max()) if na else 0
        La = self.D + 1
        Lb = 2 * self.D + 1
        self.La = La
        rows_a = np.arange(La, dtype=np.int64)[:, None]
        self.view_idx = (rows_a - self.d_arc[None, :]) % La
        self.ship_slot = (rows_a + self.d_arc[None, :]) % La
        rows_b = np.arange(Lb, dtype=np.int64)[:, None]
        self.bounce_slot = (rows_b + 2 * self.d_arc[None, :]) % Lb
        self._arc_ids = np.arange(na, dtype=np.int64)

        # -- state planes ----------------------------------------------
        #: Announce ring: A[r % La] is round r's normalised-load plane.
        self.A = np.zeros((La, n, B), dtype=np.float64)
        #: Construction-time bootstrap view (the setup Hello exchange):
        #: a node that has not yet heard a d-bucket neighbour computes on
        #: this, exactly like the event engine's view bootstrap.
        self.A_init = self.loads / self.speeds[:, None]
        #: Shipment ring: S[r % La, a] holds the tokens arriving on arc
        #: ``a`` at round r (written once per arc per round — slots are
        #: provably consumed and zeroed before reuse).
        self.S = np.zeros((La, na, B), dtype=np.float64)
        #: Bounce ring (faulted shipments, 2d round trip); only faults
        #: populate it, so fault-free runs skip the allocation.
        self.bounce = (
            np.zeros((Lb, na, B), dtype=np.float64)
            if fault_models is not None
            else None
        )
        #: Per-arc remembered flow — BalancerNode.prev_flow, arc-major.
        self.P = np.zeros((na, B), dtype=np.float64)
        #: Engine-side per-edge flow record (edge_u -> edge_v positive).
        self.E = np.zeros((self.m, B), dtype=np.float64)

        self.round_index = 0
        # Conservation ledger + observability counters (per replica).
        self.in_flight_amount = np.zeros(B, dtype=np.float64)
        self.in_flight_messages = np.zeros(B, dtype=np.int64)
        self.delivered_count = np.zeros(B, dtype=np.int64)
        self.bounced_count = np.zeros(B, dtype=np.int64)
        # Staleness statistics are replica-independent under lockstep
        # (s = min(d, r + 1)), so scalars suffice and equal every
        # replica's event-engine counters.
        self._stale_sum = 0
        self._stale_count = 0
        self.max_staleness = 0

        # -- segment-sum plumbing (arc -> source-node reduction) -------
        if na:
            self._red_idx = np.minimum(self.indptr[:-1], na - 1)
            empty = np.flatnonzero(degrees == 0)
            self._empty_rows = empty if empty.size else None
        # -- excess-token dispatch tables ------------------------------
        if rounding == "randomized-excess" and na:
            self.dmax = int(degrees.max())
            j_rows = np.arange(self.dmax, dtype=np.int64)[:, None]
            # Node-local slot j -> arc id, with a zero sentinel row (na)
            # for slots beyond the node's degree.
            self.slot_take = np.where(
                j_rows < degrees[None, :], self.indptr[:-1][None, :] + j_rows, na
            )
            self.slot_arange = np.arange(n * B, dtype=np.int64)
            self._frac_ext = np.zeros((na + 1, B), dtype=np.float64)
            if tile:
                self.node_tiles = _tiles(n, tile)
                self._planes = np.empty(
                    (self.dmax, min(tile, n), B), dtype=np.float64
                )
            else:
                self.node_tiles = None
                self._planes = np.empty((self.dmax, n, B), dtype=np.float64)
        # Per-replica LinkOutage arc masks, built lazily per model.
        self._outage_masks: dict = {}

    # ------------------------------------------------------------------
    def _segment_sum(self, x: np.ndarray) -> np.ndarray:
        """Sum arc values into their source node: ``out[i] = sum over
        node i's outgoing arcs`` — a sequential within-segment fold, the
        node-order accumulation of the per-node engines (exact for the
        integral amounts every deterministic rounding produces)."""
        if self.n_arcs == 0:
            return np.zeros((self.n, x.shape[1]), dtype=np.float64)
        out = np.add.reduceat(x, self._red_idx, axis=0)
        if self._empty_rows is not None:
            out[self._empty_rows] = 0.0
        return out

    # ------------------------------------------------------------------
    def _round_positive(self, F: np.ndarray) -> np.ndarray:
        """Round the positive scheduled flows to shipped amounts.

        Returns an ``(n_arcs, B)`` plane that is zero wherever
        ``F <= 0`` (only the positive endpoint of an arc is a sender).
        The deterministic branches are bit-identical to the node-local
        ``math.floor``/``np.rint``/``math.ceil`` on positive floats.
        """
        pos = np.where(F > 0.0, F, 0.0)
        if self.rounding == "identity":
            return pos
        if self.rounding == "floor":
            return np.floor(pos)
        if self.rounding == "nearest":
            return np.rint(pos)
        if self.rounding == "ceil":
            return np.ceil(pos)
        if self.rounding == "unbiased-edge":
            base = np.floor(pos)
            frac = pos - base
            u = np.empty_like(pos)
            for b, rng in enumerate(self.rngs):
                u[:, b] = rng.random(self.n_arcs)
            return np.add(base, u < frac, out=base)
        return self._randomized_excess(pos)

    def _randomized_excess(self, pos: np.ndarray) -> np.ndarray:
        """The paper's excess-token rounding over the outgoing arcs.

        Floor every positive flow, pool each sender's fractional parts
        ``r``, dispatch ``ceil(r - tol)`` tokens, each landing on
        outgoing arc ``j`` with probability ``{Yhat_j} / c`` and staying
        home otherwise — the batched engine's padded-adjacency dispatch
        re-indexed onto arcs.  Per-replica uniforms are consumed in
        node-ascending order (:func:`_token_uniforms`), so tiled and
        dense dispatches are bit-identical for any tile size.
        """
        base = np.floor(pos)
        if self.n_arcs == 0:
            return base
        B, na, dmax = self.B, self.n_arcs, self.dmax
        np.subtract(pos, base, out=self._frac_ext[:na])
        frac_ext = self._frac_ext

        if self.node_tiles is None:
            planes = self._planes
            np.take(frac_ext, self.slot_take[0], axis=0, out=planes[0])
            for j in range(1, dmax):
                np.take(frac_ext, self.slot_take[j], axis=0, out=planes[j])
                np.add(planes[j], planes[j - 1], out=planes[j])
            c = np.ceil(planes[dmax - 1] - _FRAC_TOL)
            c_flat = c.ravel()
            tok_slot = np.repeat(self.slot_arange, c_flat.astype(np.int64))
            if tok_slot.size == 0:
                return base
            target = _token_uniforms(self.rngs, tok_slot, B, np.float64)
            np.multiply(target, c_flat[tok_slot], out=target)
            planes_flat = planes.reshape(dmax, -1)
            pos_idx = (
                (planes_flat[0][tok_slot] <= target)
                .view(np.uint8)
                .astype(np.int64)
            )
            for j in range(1, dmax):
                pos_idx += planes_flat[j][tok_slot] <= target
            moved = np.flatnonzero(pos_idx < dmax)
            if moved.size == 0:
                return base
            tok_moved = tok_slot[moved]
            node = tok_moved // B
            col = tok_moved - node * B
            arc = self.indptr[:-1][node] + pos_idx[moved]
            extra = np.bincount(arc * B + col, minlength=na * B)
            return np.add(base, extra.reshape(na, B), out=base)

        # Tiled dispatch: cumulative planes one node tile at a time.
        tok_cols: List[np.ndarray] = []
        for a, bnd in self.node_tiles:
            k = bnd - a
            pl = self._planes[:, :k]
            np.take(frac_ext, self.slot_take[0][a:bnd], axis=0, out=pl[0])
            for j in range(1, dmax):
                np.take(frac_ext, self.slot_take[j][a:bnd], axis=0, out=pl[j])
                np.add(pl[j], pl[j - 1], out=pl[j])
            c = np.ceil(pl[dmax - 1] - _FRAC_TOL)
            c_flat = c.ravel()
            tok_slot = np.repeat(
                self.slot_arange[: k * B], c_flat.astype(np.int64)
            )
            if tok_slot.size == 0:
                continue
            target = _token_uniforms(self.rngs, tok_slot, B, np.float64)
            np.multiply(target, c_flat[tok_slot], out=target)
            pl_flat = pl.reshape(dmax, -1)
            pos_idx = (
                (pl_flat[0][tok_slot] <= target).view(np.uint8).astype(np.int64)
            )
            for j in range(1, dmax):
                pos_idx += pl_flat[j][tok_slot] <= target
            moved = np.flatnonzero(pos_idx < dmax)
            if moved.size:
                tok_moved = tok_slot[moved]
                node = tok_moved // B
                col = tok_moved - node * B
                arc = self.indptr[:-1][node + a] + pos_idx[moved]
                tok_cols.append(arc * B + col)
        if tok_cols:
            extra = np.bincount(np.concatenate(tok_cols), minlength=na * B)
            np.add(base, extra.reshape(na, B), out=base)
        return base

    # ------------------------------------------------------------------
    def _outage_arc_mask(self, model: LinkOutage) -> np.ndarray:
        mask = self._outage_masks.get(id(model))
        if mask is None:
            mask = np.fromiter(
                (
                    (
                        min(int(u), int(v)),
                        max(int(u), int(v)),
                    )
                    in model.links
                    for u, v in zip(self.arc_src, self.arc_dst)
                ),
                dtype=bool,
                count=self.n_arcs,
            )
            self._outage_masks[id(model)] = mask
        return mask

    def _fault_dropped(
        self, r: int, amt: np.ndarray, emitted: np.ndarray
    ) -> np.ndarray:
        """(n_arcs, B) drop mask, consuming each replica's fault stream
        in the event queue's per-message order (senders ascending,
        neighbours ascending within each sender)."""
        dropped = np.zeros_like(emitted)
        for b, model in enumerate(self.fault_models):
            if isinstance(model, NoFaults):
                continue
            col = emitted[:, b]
            if isinstance(model, RandomLinkDrop):
                if model.p == 0.0:
                    continue
                idx = np.flatnonzero(col)
                if idx.size:
                    dropped[idx, b] = model.rng.random(idx.size) < model.p
            elif isinstance(model, LinkOutage):
                if model._active(r):
                    dropped[:, b] = col & self._outage_arc_mask(model)
            else:
                for a in np.flatnonzero(col):
                    msg = TokenTransfer(
                        sender=int(self.arc_src[a]),
                        receiver=int(self.arc_dst[a]),
                        round_index=r,
                        amount=float(amt[a, b]),
                    )
                    if model.drops(msg, r):
                        dropped[a, b] = True
        return dropped

    # ------------------------------------------------------------------
    def inject(self, deltas: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Apply per-node workload deltas (dynamic regime), clamped at
        each node's available non-negative load — the elementwise tree of
        ``BalancerNode.receive_work``.  Returns per-replica
        ``(arrived, departed, clamped)`` totals."""
        pos = np.maximum(deltas, 0.0)
        want = np.maximum(-deltas, 0.0)
        consumed = np.minimum(want, np.maximum(self.loads, 0.0))
        np.add(self.loads, pos, out=self.loads)
        np.subtract(self.loads, consumed, out=self.loads)
        arrived = pos.sum(axis=0)
        departed = consumed.sum(axis=0)
        clamped = want.sum(axis=0) - departed
        return arrived, departed, clamped

    # ------------------------------------------------------------------
    def step(self) -> None:
        """One global round, phase for phase with the lockstep event
        queue: announce snapshot, delayed-view compute, send deduction,
        faults onto the shipment/bounce rings, then the round's bounce
        and shipment deliveries (*after* the computes — the queue's
        ``PH_DELIVER > PH_COMPUTE``), then finish."""
        r = self.round_index
        n, B, na = self.n, self.B, self.n_arcs
        slot = r % self.La

        # Phase 0 — announce: snapshot this round's normalised loads.
        xn = self.loads / self.speeds[:, None]
        self.A[slot] = xn

        if na == 0:
            self.round_index = r + 1
            return

        # Phase 2 — compute, on views exactly d rounds stale.
        V = self.A[self.view_idx[slot], self.arc_dst]
        if r < self.D:
            boot = self.d_arc > r
            if boot.any():
                V[boot] = self.A_init[self.arc_dst[boot]]
        s = np.minimum(self.d_arc, r + 1)
        self._stale_sum += int(s.sum())
        self._stale_count += na
        mx = int(s.max())
        if mx > self.max_staleness:
            self.max_staleness = mx

        G = self.alpha_arc[:, None] * (xn[self.arc_src] - V)
        if self.scheme == "sos" and r > 0:
            sos_cols = (self.switch_rounds < 0) | (r < self.switch_rounds)
            if sos_cols.all():
                F = self.bm1[None, :] * self.P + self.betas[None, :] * G
            elif sos_cols.any():
                # Select whole expressions per column (never blend with a
                # beta of 1.0 — 0.0 * P + G can flip signed zeros).
                F = np.where(
                    sos_cols[None, :],
                    self.bm1[None, :] * self.P + self.betas[None, :] * G,
                    G,
                )
            else:
                F = G
        else:
            F = G

        amt = self._round_positive(F)
        emitted = (F > 0.0) & (amt != 0.0)

        # Compute-side prev_flow writes: senders remember the rounded
        # amount (even a zero one), exact-zero schedules reset the slot,
        # negative schedules wait for the transfer (or its absence).
        np.copyto(self.P, amt, where=F > 0.0)
        np.copyto(self.P, 0.0, where=F == 0.0)

        # Engine-side per-edge flow record; the higher endpoint computes
        # later in node order, so its write wins.
        F_lo, F_hi = F[self.arc_of_lo], F[self.arc_of_hi]
        np.copyto(
            self.E,
            np.where(F_lo > 0.0, amt[self.arc_of_lo], 0.0),
            where=F_lo >= 0.0,
        )
        np.copyto(
            self.E,
            np.where(F_hi > 0.0, -amt[self.arc_of_hi], 0.0),
            where=F_hi >= 0.0,
        )

        # Send phase: each sender deducts its round total in one subtract.
        np.subtract(self.loads, self._segment_sum(amt), out=self.loads)

        # Faults: dropped shipments leave the shipment ring for the
        # bounce ring (a 2d round trip back to the sender).
        self.in_flight_amount += amt.sum(axis=0)
        self.in_flight_messages += emitted.sum(axis=0)
        ship = amt
        if self.fault_models is not None:
            dropped = self._fault_dropped(r, amt, emitted)
            if dropped.any():
                ship = np.where(dropped, 0.0, amt)
                rows, cols = np.nonzero(dropped)
                self.bounce[
                    self.bounce_slot[r % self.bounce.shape[0], rows], rows, cols
                ] = amt[rows, cols]

        # Ship: each arc's tokens land d rounds out (d = 0 lands in this
        # round's slot, read below — after the computes, like the queue).
        self.S[self.ship_slot[slot], self._arc_ids] = ship

        # Phase 3 — deliveries due this round.
        arr = self.S[slot].copy()
        self.S[slot] = 0.0

        if self.bounce is not None:
            slot_b = r % self.bounce.shape[0]
            bn = self.bounce[slot_b].copy()
            self.bounce[slot_b] = 0.0
            if bn.any():
                # Bounces first: they were pushed in earlier rounds, so
                # they carry earlier event seqs than this round's
                # deliveries (a same-edge reverse delivery overwrites the
                # bounce's zero below, matching the queue).
                np.add(self.loads, self._segment_sum(bn), out=self.loads)
                np.copyto(self.P, 0.0, where=bn != 0.0)
                rows, cols = np.nonzero(bn)
                self.E[self.arc_edge[rows], cols] = 0.0
                counts = (bn != 0.0).sum(axis=0)
                self.bounced_count += counts
                self.in_flight_messages -= counts
                self.in_flight_amount -= bn.sum(axis=0)

        arr_rev = arr[self.rev]
        has_arr = arr.any()
        if has_arr:
            # Delivery: arc (j -> i) credits i — which is the source of
            # the reverse arc — and i remembers the edge's flow as
            # negative-received.
            np.add(self.loads, self._segment_sum(arr_rev), out=self.loads)
            np.copyto(self.P, -arr_rev, where=arr_rev != 0.0)
            counts = (arr != 0.0).sum(axis=0)
            self.delivered_count += counts
            self.in_flight_messages -= counts
            self.in_flight_amount -= arr.sum(axis=0)

        # Phase 4 — finish: zero remembered flows on quiet incoming arcs.
        np.copyto(self.P, 0.0, where=(F < 0.0) & (arr_rev == 0.0))
        self.round_index = r + 1

    # ------------------------------------------------------------------
    def total_load(self) -> np.ndarray:
        """Per-replica total including in-flight tokens (conserved)."""
        return self.loads.sum(axis=0) + self.in_flight_amount

    @property
    def mean_staleness(self) -> float:
        """Mean age, in rounds, of the neighbour views used by computes —
        every replica's event-engine counter under lockstep."""
        if self._stale_count == 0:
            return 0.0
        return self._stale_sum / self._stale_count


@dataclass
class _StalenessHandle:
    topo: Topology
    config: EngineConfig
    core: _StalenessCore
    tables: List[RecordTable]
    targets: List[Optional[np.ndarray]]
    loads_histories: List[Optional[List[np.ndarray]]]
    switch_rounds: List[Optional[int]]
    last_min_transient: np.ndarray
    last_traffic: np.ndarray


@dataclass
class _DynamicStalenessHandle:
    topo: Topology
    config: EngineConfig
    core: _StalenessCore
    models: List[ArrivalModel]
    rngs: List[np.random.Generator]
    tables: List[DynamicRecordTable]
    pending: Tuple[np.ndarray, np.ndarray, np.ndarray] = field(
        default_factory=lambda: (np.zeros(0), np.zeros(0), np.zeros(0))
    )
    injected: bool = False


@register_engine
class StalenessEngine(Engine):
    """Delay-bucketed vectorised replay of the bounded-staleness regime."""

    name = "staleness"

    # ------------------------------------------------------------------
    def _reject(self, config: EngineConfig) -> None:
        offending = []
        if config.arrival_sampling != "stream":
            offending.append(f"arrival_sampling={config.arrival_sampling!r}")
        if config.record_mode != "table":
            offending.append(f"record_mode={config.record_mode!r}")
        if config.record_fields is not None:
            offending.append("record_fields")
        if config.fast_path in ("matmul", "spectral"):
            offending.append(f"fast_path={config.fast_path!r}")
        if config.kernel not in ("numpy", "auto"):
            offending.append(f"kernel={config.kernel!r}")
        if offending:
            raise ConfigurationError(
                "the staleness engine does not support "
                + ", ".join(offending)
                + " (batched/sharded engines only)"
            )
        reject_sharded_only(config, "staleness")
        if config.churn is not None:
            raise ConfigurationError(
                "the staleness engine does not support churn schedules: "
                "its delayed-view ring planes assume a fixed topology; use "
                "the network or async engine for churn"
            )
        if config.precision != "float64":
            raise ConfigurationError(
                "the staleness engine only supports precision='float64'"
            )

    @staticmethod
    def _replica_beta(config, params, b: int) -> float:
        if config.scheme != "sos":
            return 1.0
        if params is not None and params.betas is not None:
            return float(params.betas[b])
        return config.beta

    def _replica_keys(self, config: EngineConfig, B: int) -> List[int]:
        if config.replica_keys is None:
            return list(range(B))
        keys = [int(k) for k in config.replica_keys]
        if len(keys) != B:
            raise ConfigurationError(
                f"{len(keys)} replica_keys for {B} replicas"
            )
        return keys

    # ------------------------------------------------------------------
    def prepare(self, topo, config, initial_loads):
        config.validate()
        self._reject(config)
        loads = as_load_batch(initial_loads, topo.n)
        B = loads.shape[0]
        params = resolve_replica_params(config.replica_params, B)
        if params is not None and params.alpha_scales is not None:
            raise ConfigurationError(
                "the staleness engine does not support "
                "replica_params.alpha_scales (use the reference or batched "
                "engine for alpha-scale sweeps)"
            )
        loads = apply_load_scales(loads, params)
        if topo.link_bandwidth is not None:
            raise ConfigurationError(
                "the staleness engine does not support stamped "
                "link_bandwidth: size-dependent delivery delays cannot be "
                "quantised into fixed round buckets (use the async engine)"
            )
        speeds = validate_speeds(
            np.asarray(config.speeds, dtype=np.float64)
            if config.speeds is not None
            else uniform_speeds(topo.n),
            topo.n,
        )

        latency = resolve_link_latency(topo, config)
        if latency is None:
            latency = topo.link_latency
        d_edge = quantize_link_latency(
            latency, config.latency_buckets, topo.m_edges
        )
        if config.max_skew is not None:
            # The gate clamp: a view can never be more than
            # max_skew + 1 rounds stale.
            np.minimum(d_edge, config.max_skew + 1, out=d_edge)

        switch_round: Optional[int] = None
        if config.switch is not None:
            if not (
                isinstance(config.switch, (tuple, list))
                and len(config.switch) == 2
                and config.switch[0] == "fixed"
            ):
                raise ConfigurationError(
                    "the staleness engine only supports the "
                    f"('fixed', round) switch spec, got {config.switch!r}"
                )
            switch_round = int(config.switch[1])

        betas = np.empty(B, dtype=np.float64)
        switch_plane = np.full(B, -1, dtype=np.int64)
        switch_list: List[Optional[int]] = []
        for b in range(B):
            betas[b] = self._replica_beta(config, params, b)
            sw = switch_round
            if params is not None and params.switch_rounds is not None:
                round_b = int(params.switch_rounds[b])
                sw = round_b if round_b >= 0 else None
            switch_list.append(sw)
            switch_plane[b] = -1 if sw is None else sw

        parsed = parse_faults_spec(config.faults)
        fault_models = None
        if parsed is not None and not isinstance(parsed, NoFaults):
            fault_models = [
                parsed.with_rng(
                    np.random.default_rng(
                        [config.seed + key, FAULT_STREAM_KEY]
                    )
                )
                for key in self._replica_keys(config, B)
            ]

        rngs = (
            resolve_rounding_rngs(config, B)
            if config.rounding in _STOCHASTIC_ROUNDINGS
            else None
        )
        planes = (
            int(np.asarray(topo.degrees).max())
            if topo.n and config.rounding == "randomized-excess"
            else 0
        )
        tile = resolve_tile_size(config, topo.n, B, 8, planes=planes)

        core = _StalenessCore(
            topo,
            speeds,
            # Always a fresh C-order copy: a (1, n) batch's transpose is
            # already contiguous, and the core mutates its loads in place.
            loads.T.copy(),
            scheme=config.scheme,
            betas=betas,
            switch_rounds=switch_plane,
            rounding=config.rounding,
            d_edge=d_edge,
            fault_models=fault_models,
            rngs=rngs,
            tile=tile,
        )

        if config.arrivals is not None:
            models = resolve_arrival_models(config.arrivals, B)
            if params is not None and params.arrival_scales is not None:
                models = [
                    ScaledArrivals(m, float(params.arrival_scales[b]))
                    for b, m in enumerate(models)
                ]
            return _DynamicStalenessHandle(
                topo=topo,
                config=config,
                core=core,
                models=models,
                rngs=resolve_arrival_rngs(config, B),
                tables=[
                    DynamicRecordTable(max(config.rounds, 1) + 1)
                    for _ in range(B)
                ],
            )

        scheme0 = (
            "FirstOrderScheme" if config.scheme == "fos" else "SecondOrderScheme"
        )
        tables: List[RecordTable] = []
        targets_list: List[Optional[np.ndarray]] = []
        histories: List[Optional[List[np.ndarray]]] = []
        last_min = np.empty(B, dtype=np.float64)
        last_traffic = np.zeros(B, dtype=np.float64)
        handle = _StalenessHandle(
            topo=topo,
            config=config,
            core=core,
            tables=tables,
            targets=targets_list,
            loads_histories=histories,
            switch_rounds=switch_list,
            last_min_transient=last_min,
            last_traffic=last_traffic,
        )
        zero_flows = np.zeros(topo.m_edges, dtype=np.float64)
        for b in range(B):
            load_b = np.ascontiguousarray(core.loads[:, b])
            targets = (
                config.targets
                if config.targets is not None
                else target_loads(float(load_b.sum()), speeds)
            )
            tables.append(RecordTable(config.rounds // config.record_every + 2))
            targets_list.append(targets)
            histories.append([] if config.keep_loads else None)
            last_min[b] = float(load_b.min())
            self._record(handle, b, load_b, zero_flows, 0, scheme0)
        return handle

    # ------------------------------------------------------------------
    def _scheme_name(
        self,
        config: EngineConfig,
        switch_round: Optional[int],
        round_index: int,
    ) -> str:
        if config.scheme == "fos":
            return "FirstOrderScheme"
        if switch_round is not None and round_index > switch_round:
            return "FirstOrderScheme"
        return "SecondOrderScheme"

    def _record(
        self,
        handle: _StalenessHandle,
        b: int,
        load: np.ndarray,
        flows: np.ndarray,
        round_index: int,
        scheme_name: str,
    ) -> None:
        record_round(
            handle.tables[b],
            handle.topo,
            LoadState(load=load, flows=flows, round_index=round_index),
            handle.targets[b],
            scheme_name,
            float(handle.last_min_transient[b]),
            float(handle.last_traffic[b]),
        )
        if handle.loads_histories[b] is not None:
            handle.loads_histories[b].append(load.copy())

    # ------------------------------------------------------------------
    def _inject(self, handle: _DynamicStalenessHandle):
        if handle.injected:
            raise SimulationError(
                f"arrivals already applied for round {handle.core.round_index}"
            )
        core = handle.core
        deltas = np.empty((handle.topo.n, core.B), dtype=np.float64)
        for b, (model, rng) in enumerate(zip(handle.models, handle.rngs)):
            deltas[:, b] = model.deltas(handle.topo, core.round_index, rng)
        handle.pending = core.inject(deltas)
        handle.injected = True
        return handle.pending

    def arrive(self, handle) -> ArrivalBatch:
        if not isinstance(handle, _DynamicStalenessHandle):
            raise ConfigurationError(
                "arrive() needs a dynamic run (config.arrivals was None)"
            )
        arrived, departed, clamped = self._inject(handle)
        return ArrivalBatch(
            round_index=handle.core.round_index,
            arrived=arrived,
            departed=departed,
            clamped=clamped,
        )

    # ------------------------------------------------------------------
    def step(self, handle) -> StepBatch:
        if isinstance(handle, _DynamicStalenessHandle):
            return self._step_dynamic(handle)
        core = handle.core
        topo = handle.topo
        before = core.loads.copy()
        core.step()
        r = core.round_index
        record = r % handle.config.record_every == 0
        switched = np.empty(core.B, dtype=bool)
        for b in range(core.B):
            flows_b = np.ascontiguousarray(core.E[:, b])
            transients = transient_loads(
                topo, np.ascontiguousarray(before[:, b]), flows_b
            )
            handle.last_min_transient[b] = float(transients.min())
            handle.last_traffic[b] = float(np.abs(flows_b).sum())
            switched[b] = (
                handle.switch_rounds[b] == r and handle.config.scheme == "sos"
            )
            if record:
                self._record(
                    handle,
                    b,
                    np.ascontiguousarray(core.loads[:, b]),
                    flows_b,
                    r,
                    self._scheme_name(
                        handle.config, handle.switch_rounds[b], r
                    ),
                )
        return StepBatch(
            round_index=r,
            loads=core.loads.T.copy(),
            flows=core.E.T.copy(),
            min_transient=handle.last_min_transient.copy(),
            traffic=handle.last_traffic.copy(),
            switched=switched,
        )

    def _step_dynamic(self, handle: _DynamicStalenessHandle) -> StepBatch:
        if not handle.injected:
            self._inject(handle)
        core = handle.core
        topo = handle.topo
        before = core.loads.copy()
        core.step()
        r = core.round_index
        arrived, departed, clamped = handle.pending
        min_transient = np.empty(core.B, dtype=np.float64)
        traffic = np.empty(core.B, dtype=np.float64)
        for b in range(core.B):
            flows_b = np.ascontiguousarray(core.E[:, b])
            transients = transient_loads(
                topo, np.ascontiguousarray(before[:, b]), flows_b
            )
            min_transient[b] = float(transients.min())
            traffic[b] = float(np.abs(flows_b).sum())
            loads_b = np.ascontiguousarray(core.loads[:, b])
            handle.tables[b].append(
                round_index=r,
                total_load=float(loads_b.sum()),
                arrived=float(arrived[b]),
                departed=float(departed[b]),
                clamped=float(clamped[b]),
                max_minus_avg=max_minus_average(loads_b),
                max_local_diff=max_local_difference(topo, loads_b),
                potential_per_node=normalized_potential(loads_b),
            )
        handle.injected = False
        return StepBatch(
            round_index=r,
            loads=core.loads.T.copy(),
            flows=core.E.T.copy(),
            min_transient=min_transient,
            traffic=traffic,
            switched=np.zeros(core.B, dtype=bool),
        )

    # ------------------------------------------------------------------
    def metrics(self, handle) -> RecordBatch:
        core = handle.core
        if isinstance(handle, _DynamicStalenessHandle):
            return RecordBatch(
                prebuilt_dynamic=[
                    DynamicResult(
                        table=handle.tables[b],
                        final_state=LoadState(
                            load=np.ascontiguousarray(core.loads[:, b]),
                            flows=np.ascontiguousarray(core.E[:, b]),
                            round_index=core.round_index,
                        ),
                    )
                    for b in range(core.B)
                ]
            )
        results: List[SimulationResult] = []
        round_index = core.round_index
        for b in range(core.B):
            load_b = np.ascontiguousarray(core.loads[:, b])
            flows_b = np.ascontiguousarray(core.E[:, b])
            if handle.tables[b].column("round_index")[-1] != round_index:
                self._record(
                    handle,
                    b,
                    load_b,
                    flows_b,
                    round_index,
                    self._scheme_name(
                        handle.config, handle.switch_rounds[b], round_index
                    ),
                )
            switched = (
                handle.switch_rounds[b]
                if handle.config.scheme == "sos"
                and handle.switch_rounds[b] is not None
                and handle.switch_rounds[b] <= round_index
                else None
            )
            results.append(
                SimulationResult(
                    table=handle.tables[b],
                    final_state=LoadState(
                        load=load_b,
                        flows=flows_b,
                        round_index=round_index,
                    ),
                    switched_at=switched,
                    loads_history=handle.loads_histories[b],
                )
            )
        return RecordBatch(prebuilt=results)

    # ------------------------------------------------------------------
    # Whole-batch entry points for the sharded engine's column shards.
    def run_batch(self, topo, config, loads) -> RecordBatch:
        handle = self.prepare(topo, config, loads)
        for _ in range(config.rounds):
            self.step(handle)
        return self.metrics(handle)

    def run_dynamic_batch(self, topo, config, loads) -> RecordBatch:
        handle = self.prepare(topo, config, loads)
        for _ in range(config.rounds):
            self.arrive(handle)
            self.step(handle)
        return self.metrics(handle)
