"""Command-line interface for the repro load balancing library.

Subcommands::

    repro-lb list                      # available experiments
    repro-lb table1 [--scale ci]       # reproduce Table I
    repro-lb figure fig01 [...]        # run one figure driver
    repro-lb simulate --graph cm ...   # free-form simulation
    repro-lb render --out DIR [...]    # write Figure 9-11 PGM frames

All commands print plain-text reports; ``--output-dir`` archives the full
record as JSON.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import make_arrival_model, point_load, uniform_load
from .engines import ENGINES, make_engine
from .exceptions import ConfigurationError
from .experiments import (
    build_graph,
    dynamic_replica_ensemble,
    engine_config,
    format_record,
    format_table,
    list_experiments,
    replica_ensemble,
    reproduce_table1,
    run_experiment,
)
from .experiments.figures import fig09_11_renders
from .viz import sparkline

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-lb",
        description="Discrete diffusion load balancing (ICDCS'15 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    p_table = sub.add_parser("table1", help="reproduce Table I betas")
    p_table.add_argument("--scale", default="ci", choices=["tiny", "ci", "paper"])
    p_table.add_argument("--seed", type=int, default=0)

    p_fig = sub.add_parser("figure", help="run a figure driver")
    p_fig.add_argument("name", help="experiment id, e.g. fig01")
    p_fig.add_argument("--scale", default="ci", choices=["tiny", "ci", "paper"])
    p_fig.add_argument("--seed", type=int, default=0)
    p_fig.add_argument("--rounds", type=int, default=None)
    p_fig.add_argument("--output-dir", default=None)
    p_fig.add_argument(
        "--engine",
        default=None,
        choices=sorted(ENGINES),
        help="execution backend for the driver's simulations",
    )
    p_fig.add_argument(
        "--seeds",
        type=int,
        default=1,
        help=(
            "seed replicas per curve for the seed-averaged drivers "
            "(fig02, fig08): one batched ensemble call produces mean/std "
            "series"
        ),
    )

    p_sim = sub.add_parser("simulate", help="run a free-form simulation")
    p_sim.add_argument(
        "--graph",
        default="torus-1000",
        help="graph config key (see `repro-lb list`): torus-1000, cm, ...",
    )
    p_sim.add_argument("--scale", default="ci", choices=["tiny", "ci", "paper"])
    p_sim.add_argument("--scheme", default="sos", choices=["fos", "sos"])
    p_sim.add_argument(
        "--rounding",
        default="randomized-excess",
        choices=[
            "identity",
            "floor",
            "nearest",
            "ceil",
            "unbiased-edge",
            "randomized-excess",
        ],
    )
    p_sim.add_argument("--rounds", type=int, default=500)
    p_sim.add_argument("--avg-load", type=int, default=1000)
    p_sim.add_argument("--switch-round", type=int, default=None)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument(
        "--engine",
        default="reference",
        choices=sorted(ENGINES),
        help=(
            "execution backend (batched runs all replicas per numpy step; "
            "sharded splits them across worker processes, see --workers)"
        ),
    )
    p_sim.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="independent replicas; >1 runs an ensemble and reports statistics",
    )
    p_sim.add_argument(
        "--record-every",
        type=int,
        default=1,
        help="record metrics every this many rounds",
    )
    p_sim.add_argument(
        "--precision",
        default="float64",
        choices=["float64", "float32"],
        help="float32 is the batched engine's ensemble-throughput mode",
    )
    p_sim.add_argument(
        "--arrivals",
        default=None,
        metavar="SPEC",
        help=(
            "run the dynamic regime: tokens arrive/depart each round before "
            "the balancing step.  SPEC is poisson:RATE[,depart=RATE] "
            "(e.g. poisson:3.0,depart=1.0), burst:BURST/PERIOD "
            "(e.g. burst:200/50), hotspot:N0,N1,...:RATE "
            "(e.g. hotspot:0,1:5), trace:FILE (replay a delta stream "
            "recorded with repro.io.save_arrival_trace), or none.  "
            "Starts from the uniform "
            "--avg-load and reports steady-state imbalance against the "
            "moving average"
        ),
    )
    p_sim.add_argument(
        "--arrival-sampling",
        default="stream",
        choices=["stream", "batch"],
        help=(
            "batched-engine arrival sampling: 'stream' (default) draws each "
            "replica from its own spawned stream (bit-exact with the "
            "reference engine), 'batch' draws the whole (n, B) count plane "
            "in one vectorised call — much faster for per-node Poisson "
            "churn, at the price of stream-for-stream cross-engine parity"
        ),
    )
    p_sim.add_argument(
        "--fast-path",
        default="auto",
        choices=["auto", "never", "matmul", "spectral"],
        help=(
            "closed-form continuous fast path of the batched engine "
            "(identity rounding, no switch, transient/traffic columns "
            "dropped): 'auto' engages it when eligible, 'matmul' forces the "
            "one-CSR-matmul-per-round tier, 'spectral' the torus Fourier "
            "kernel"
        ),
    )
    p_sim.add_argument(
        "--kernel",
        default="numpy",
        choices=["numpy", "numba", "cffi", "python", "auto"],
        help=(
            "kernel tier of the batched engine's discrete hot loop: 'numpy' "
            "(default) runs the vectorised numpy kernels, 'numba'/'cffi' "
            "force a compiled provider (error when unavailable — install "
            "the [compiled] extra), 'python' the pure-python reference "
            "provider, 'auto' the best available compiled provider with "
            "silent numpy fallback; every tier is bit-identical"
        ),
    )
    p_sim.add_argument(
        "--tile-size",
        default=None,
        metavar="N|auto",
        help=(
            "node-tile width of the batched engine's streaming kernels: an "
            "int, or 'auto' to derive it from --memory-budget-mb; default "
            "keeps dense whole-batch scratch"
        ),
    )
    p_sim.add_argument(
        "--memory-budget-mb",
        type=float,
        default=256.0,
        help="scratch budget (MiB) used by --tile-size auto",
    )
    p_sim.add_argument(
        "--record-mode",
        default="table",
        choices=["table", "summary"],
        help=(
            "'summary' streams records through running min/max/sum/last "
            "aggregates instead of dense per-round columns (memory "
            "independent of the round count; batched engine only)"
        ),
    )
    p_sim.add_argument(
        "--record-fields",
        default=None,
        metavar="FIELDS",
        help=(
            "comma-separated record columns to compute (batched engine), "
            "or 'node' for every node-space column — i.e. everything except "
            "min_transient/round_traffic, which is what lets --fast-path "
            "auto engage on identity rounding"
        ),
    )
    p_sim.add_argument(
        "--workers",
        default=None,
        metavar="N|auto",
        help=(
            "worker-process count of the sharded engine (--engine sharded): "
            "an int, or 'auto' to use every usable CPU; the replica batch "
            "splits into contiguous column shards, one batched engine per "
            "worker, bit-identical to the single-process batched run"
        ),
    )
    p_sim.add_argument(
        "--pool",
        action="store_true",
        help=(
            "run the sharded engine through the process-wide persistent "
            "worker pool (--engine sharded): workers survive across calls, "
            "cache the prepared topology operators, and write record "
            "columns into shared memory the parent reads zero-copy — "
            "bit-identical to per-call sharded execution"
        ),
    )

    p_sim.add_argument(
        "--latency",
        default=None,
        metavar="SPEC",
        help=(
            "per-link latency model of the async/staleness engines "
            "(--engine async/staleness): a number of rounds (e.g. 1.5), "
            "'uniform:LO,HI' or 'exp:MEAN' (random per-link latencies drawn "
            "once from the run seed); default reads the topology's stamped "
            "link attributes, which fall back to the synchronous "
            "zero-latency regime"
        ),
    )
    p_sim.add_argument(
        "--max-skew",
        type=int,
        default=None,
        metavar="K",
        help=(
            "bounded-staleness gate of the async engine: a node may not "
            "start round r before hearing round >= r-1-K from every "
            "neighbour (default: unbounded skew); on the staleness engine "
            "the same bound clamps every latency bucket to K+1 rounds"
        ),
    )
    p_sim.add_argument(
        "--latency-buckets",
        default="ceil",
        choices=["ceil", "floor", "nearest", "exact"],
        help=(
            "how the staleness engine (--engine staleness) quantises "
            "per-link latencies into integer round buckets: ceil/floor/"
            "nearest round fractional latencies, exact refuses them "
            "(the bit-identical-to-async regime); default ceil"
        ),
    )
    p_sim.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "fault model on the message-passing engines (--engine network/"
            "async/staleness): 'drop:P' drops each token shipment "
            "independently with "
            "probability P, 'outage:U:V:START[:END]' kills link (U,V) for "
            "rounds START <= r < END (END omitted = forever); dropped "
            "shipments bounce back to their sender, so load is conserved"
        ),
    )
    p_sim.add_argument(
        "--churn",
        default=None,
        metavar="SPEC",
        help=(
            "topology churn schedule: semicolon-separated events "
            "'crash:V@R[-R2]' (node V crashes at round R, recovering at "
            "R2), 'leave:V@R', 'join:V@R:U1+U2+...', 'edge-:U-V@R', "
            "'edge+:U-V@R', plus 'policy:handoff|freeze' and 'random:RATE' "
            "(a seed-derived random schedule).  Crashed and leaving nodes "
            "hand their tokens to live neighbours (or freeze them under "
            "policy:freeze), so sum(loads) survives the whole schedule; "
            "every engine supports it"
        ),
    )

    p_sim.add_argument(
        "--sweep",
        action="append",
        default=None,
        metavar="KEY=SPEC",
        help=(
            "run a parameter sweep as ONE batched engine call: KEY is one "
            "of switch-round, beta, alpha-scale, load-scale, arrival-scale "
            "and SPEC is a linspace START:STOP:COUNT or an explicit comma "
            "list (switch-round accepts 'none' for the pure-SOS curve). "
            "Repeat the flag to cross axes, e.g. "
            "--sweep switch-round=none,300,500,700,900; --replicas sets "
            "the seed replicas per sweep point"
        ),
    )

    p_render = sub.add_parser("render", help="write Figure 9-11 PGM frames")
    p_render.add_argument("--out", required=True, help="output directory")
    p_render.add_argument("--scale", default="ci", choices=["tiny", "ci", "paper"])
    p_render.add_argument("--seed", type=int, default=0)

    return parser


def _cmd_table1(args) -> int:
    rows = reproduce_table1(scale=args.scale, seed=args.seed)
    table = format_table(
        ["graph", "paper size", "n (built)", "lambda", "beta (built)",
         "beta (paper-scale, exact)", "beta (printed in paper)"],
        [
            [
                r.key,
                r.paper_size,
                r.n,
                r.lam,
                r.beta,
                r.analytic_paper_beta,
                r.paper_beta,
            ]
            for r in rows
        ],
        title=f"Table I reproduction (scale={args.scale})",
    )
    print(table)
    return 0


def _cmd_figure(args) -> int:
    kwargs = {"scale": args.scale, "seed": args.seed}
    if args.rounds is not None:
        kwargs["rounds"] = args.rounds
    if args.seeds > 1:
        import inspect

        from .experiments.runner import EXPERIMENTS

        driver = EXPERIMENTS.get(args.name)
        if driver is None or "n_seeds" not in inspect.signature(driver).parameters:
            print(
                f"--seeds applies to the seed-averaged drivers only "
                f"(fig02, fig08); {args.name} runs single-seed",
                file=sys.stderr,
            )
        else:
            kwargs["n_seeds"] = args.seeds
    record = run_experiment(
        args.name, output_dir=args.output_dir, engine=args.engine, **kwargs
    )
    print(format_record(record))
    for key in ("sos_max_minus_avg", "max_minus_avg"):
        if key in record.series:
            print(f"\n{key} (log sparkline):")
            print(sparkline(record.series[key], log=True))
            break
    return 0


def _parse_tile_size(value):
    if value is None or value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise SystemExit(f"--tile-size must be an int or 'auto', got {value!r}")


def _parse_workers(value):
    if value is None or value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise SystemExit(f"--workers must be an int or 'auto', got {value!r}")


def _parse_sweep_axes(specs):
    """Parse repeated ``--sweep KEY=SPEC`` flags into ParamGrid axes."""
    from .experiments import SWEEP_KEYS

    axes = {}
    for spec in specs:
        key, eq, value = spec.partition("=")
        if not eq:
            raise SystemExit(f"--sweep needs KEY=SPEC, got {spec!r}")
        key = key.strip().lower().replace("-", "_")
        if key not in SWEEP_KEYS:
            raise SystemExit(
                f"unknown sweep key {key!r}; known: "
                + ", ".join(k.replace("_", "-") for k in sorted(SWEEP_KEYS))
            )
        if key in axes:
            raise SystemExit(
                f"--sweep {key.replace('_', '-')} given twice; put every "
                "value of one axis in a single flag (repeats cross "
                "*different* axes)"
            )
        value = value.strip()
        try:
            if ":" in value:
                start, stop, count = value.split(":")
                import numpy as np

                values = [
                    float(v) for v in np.linspace(
                        float(start), float(stop), int(count)
                    )
                ]
            else:
                values = [
                    None if v.strip().lower() == "none" else float(v)
                    for v in value.split(",")
                    if v.strip()
                ]
        except ValueError:
            raise SystemExit(
                f"--sweep values must be START:STOP:COUNT or a comma list, "
                f"got {value!r}"
            )
        if not values:
            raise SystemExit(f"--sweep {key} got no values")
        if key == "switch_round":
            values = [None if v is None else int(round(v)) for v in values]
        axes[key] = values
    return axes


def _parse_record_fields(value):
    if value is None:
        return None
    if value == "node":
        from .core.records import FLOAT_FIELDS

        return tuple(
            f for f in FLOAT_FIELDS if f not in ("min_transient", "round_traffic")
        )
    return tuple(f.strip() for f in value.split(",") if f.strip())


def _cmd_simulate(args) -> int:
    built = build_graph(args.graph, scale=args.scale, seed=args.seed)
    config = engine_config(
        built,
        scheme=args.scheme,
        rounding=args.rounding,
        rounds=args.rounds,
        record_every=args.record_every,
        seed=args.seed,
        switch_round=args.switch_round,
        precision=args.precision,
        fast_path=args.fast_path,
        kernel=args.kernel,
        tile_size=_parse_tile_size(args.tile_size),
        memory_budget_mb=args.memory_budget_mb,
        record_mode=args.record_mode,
        record_fields=_parse_record_fields(args.record_fields),
        arrival_sampling=args.arrival_sampling,
        workers=_parse_workers(args.workers),
        pool=True if args.pool else None,
        latency_model=args.latency,
        max_skew=args.max_skew,
        latency_buckets=args.latency_buckets,
        faults=args.faults,
        churn=args.churn,
    )
    try:
        config.validate()
    except ConfigurationError as exc:
        raise SystemExit(f"invalid configuration: {exc}")
    print(
        f"graph={built.key} n={built.n} lambda={built.lam:.6f} "
        f"beta={built.beta:.6f} scheme={args.scheme} rounding={args.rounding} "
        f"engine={args.engine} replicas={args.replicas}"
        + (f" arrivals={args.arrivals}" if args.arrivals else "")
    )
    if args.sweep:
        return _simulate_sweep(args, built, config)
    if args.arrivals is not None:
        return _simulate_dynamic(args, built, config)
    # Engine-level rejections (per-backend knob guards, latency-bucket
    # quantisation, ...) surface at prepare time — exit as cleanly as the
    # validate() failures above.
    try:
        if args.replicas > 1:
            ensemble = replica_ensemble(
                built.topo,
                config,
                n_replicas=args.replicas,
                average_load=args.avg_load,
                engine=args.engine,
            )
            for key in sorted(ensemble.stats):
                print(f"  {key} = {ensemble.stats[key]:.4g}")
            result = ensemble.results[0]
        else:
            initial = point_load(built.topo, args.avg_load * built.topo.n)
            result = make_engine(args.engine).run(built.topo, config, initial)[0]
    except ConfigurationError as exc:
        raise SystemExit(f"invalid configuration: {exc}")
    import math

    final = result.records[-1]
    parts = [
        f"after {final.round_index} rounds (replica 0): ",
        f"max-avg={final.max_minus_avg:.2f} ",
        f"local-diff={final.max_local_diff:.2f} ",
        f"potential/n={final.potential_per_node:.4g}",
    ]
    if not math.isnan(result.min_transient_overall):
        parts.append(f" min-transient={result.min_transient_overall:.1f}")
    print("".join(parts))
    if result.switched_at is not None:
        print(f"switched to FOS after round {result.switched_at}")
    print("max-avg (log sparkline):")
    print(sparkline(result.series("max_minus_avg"), log=True))
    return 0


def _simulate_sweep(args, built, config) -> int:
    """The sweep branch of ``simulate`` (``--sweep KEY=SPEC ...``):
    the whole grid times the seed replicas runs as one engine call."""
    from .experiments import ParamGrid, sweep_ensemble

    grid = ParamGrid(**_parse_sweep_axes(args.sweep))
    if args.arrivals is not None:
        config.arrivals = make_arrival_model(args.arrivals)
    sweep = sweep_ensemble(
        built.topo,
        config,
        grid,
        n_seeds=max(args.replicas, 1),
        average_load=args.avg_load,
        engine=args.engine,
    )
    print(
        f"sweep: {grid.n_points} points x {sweep.n_seeds} seed(s) = "
        f"{sweep.n_replicas} replicas in ONE {args.engine} engine call"
    )
    stat_keys = sorted({k for stats in sweep.point_stats for k in stats})
    rows = [
        [label] + [
            f"{stats[k]:.4g}" if stats.get(k) is not None else "-"
            for k in stat_keys
        ]
        for label, stats in zip(sweep.labels, sweep.point_stats)
    ]
    print(format_table(["point"] + stat_keys, rows, title="sweep points"))
    return 0


def _simulate_dynamic(args, built, config) -> int:
    """The dynamic-regime branch of ``simulate`` (``--arrivals SPEC``)."""
    model = make_arrival_model(args.arrivals)
    if args.replicas > 1:
        ensemble = dynamic_replica_ensemble(
            built.topo,
            config,
            [model],
            seeds=range(args.replicas),
            average_load=args.avg_load,
            engine=args.engine,
        )
        for key in sorted(ensemble.stats):
            print(f"  {key} = {ensemble.stats[key]:.6g}")
        result = ensemble.results[0]
    else:
        config.arrivals = model
        initial = uniform_load(built.topo, args.avg_load)
        result = make_engine(args.engine).run_dynamic(
            built.topo, config, initial
        )[0]
    table = result.table
    if len(table):
        print(
            f"after {int(table.column('round_index')[-1])} rounds (replica 0): "
            f"total={table.column('total_load')[-1]:,.0f} "
            f"arrived={table.column('arrived').sum():,.0f} "
            f"departed={table.column('departed').sum():,.0f} "
            f"clamped={table.column('clamped').sum():,.0f}"
        )
        print(
            "steady-state imbalance (moving average target): "
            f"{result.steady_state_imbalance():.2f}"
        )
        print("max-avg (log sparkline):")
        print(sparkline(result.series("max_minus_avg"), log=True))
    return 0


def _cmd_render(args) -> int:
    record = fig09_11_renders(scale=args.scale, seed=args.seed, directory=args.out)
    print(format_record(record))
    print(f"frames written to {args.out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in list_experiments():
            print(name)
        return 0
    if args.command == "table1":
        return _cmd_table1(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "render":
        return _cmd_render(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
