"""Convergence-time measurement and FOS/SOS comparison.

The paper's headline quantitative claim is the runtime gap: continuous SOS
balances in ``O(log(Kn)/sqrt(1-lambda))`` rounds versus
``O(log(Kn)/(1-lambda))`` for FOS — "almost quadratically faster" when the
spectral gap is small (tori), but nearly indistinguishable on expanders
(random graphs) and hypercubes.  These helpers extract convergence rounds
from recorded runs and fit decay rates so the benches can report measured
speed-ups next to the theoretical prediction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..core.simulator import SimulationResult

__all__ = [
    "convergence_round",
    "decay_rate",
    "predicted_speedup",
    "measured_speedup",
    "SpeedupReport",
]


def convergence_round(
    result: SimulationResult,
    field: str = "max_minus_avg",
    threshold: float = 10.0,
    sustained: int = 1,
) -> Optional[int]:
    """First recorded round where ``field`` stays <= threshold.

    ``sustained`` consecutive records must satisfy the threshold (discrete
    schemes fluctuate, so a single lucky round should not count as
    converged).  Returns ``None`` when never reached.
    """
    if sustained < 1:
        raise ConfigurationError(f"sustained must be >= 1, got {sustained}")
    streak = 0
    for rec in result.records:
        if getattr(rec, field) <= threshold:
            streak += 1
            if streak >= sustained:
                return rec.round_index
        else:
            streak = 0
    return None


def decay_rate(series: Sequence[float], skip: int = 0) -> float:
    """Least-squares exponential decay rate of a positive series.

    Fits ``log(y_t) ~ a - rate * t`` over the entries after ``skip`` that
    are positive; returns ``rate`` (per round).  A pure continuous FOS decays
    at about ``-log(lambda)`` in the potential's square root.
    """
    y = np.asarray(series, dtype=np.float64)[skip:]
    mask = y > 0
    if mask.sum() < 2:
        raise ConfigurationError("need at least two positive samples to fit")
    t = np.arange(y.size, dtype=np.float64)[mask]
    log_y = np.log(y[mask])
    slope, _ = np.polyfit(t, log_y, 1)
    return float(-slope)


def predicted_speedup(lam: float) -> float:
    """Theoretical SOS-over-FOS speed-up ``~ 1/sqrt(1-lambda)``."""
    if not 0.0 <= lam < 1.0:
        raise ConfigurationError(f"lambda must be in [0, 1), got {lam}")
    return 1.0 / math.sqrt(1.0 - lam)


@dataclass
class SpeedupReport:
    """Measured FOS vs SOS convergence comparison."""

    fos_round: Optional[int]
    sos_round: Optional[int]
    threshold: float
    predicted: float

    @property
    def measured(self) -> Optional[float]:
        """``fos_round / sos_round`` (None when either never converged)."""
        if not self.fos_round or not self.sos_round:
            return None
        return self.fos_round / self.sos_round

    def __str__(self) -> str:
        measured = self.measured
        measured_txt = f"{measured:.2f}x" if measured is not None else "n/a"
        return (
            f"SOS speedup at threshold {self.threshold}: measured "
            f"{measured_txt} (FOS {self.fos_round}, SOS {self.sos_round}), "
            f"predicted ~{self.predicted:.2f}x"
        )


def measured_speedup(
    fos_result: SimulationResult,
    sos_result: SimulationResult,
    lam: float,
    field: str = "max_minus_avg",
    threshold: float = 10.0,
    sustained: int = 3,
) -> SpeedupReport:
    """Compare two recorded runs of the same workload."""
    return SpeedupReport(
        fos_round=convergence_round(fos_result, field, threshold, sustained),
        sos_round=convergence_round(sos_result, field, threshold, sustained),
        threshold=threshold,
        predicted=predicted_speedup(lam),
    )
