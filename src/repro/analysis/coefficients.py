"""Impact of eigenvectors on the load (Section VI, Figures 7 and 15).

The paper decomposes the load vector in the eigenbasis of the diffusion
matrix: solving ``V a = x(t)`` for the orthonormal eigenvector matrix ``V``
gives coefficients ``a_i(t)`` whose magnitudes describe the load imbalance
completely (the stationary coefficient ``a_1`` carries the average).  Each
continuous FOS round multiplies ``a_i`` by the eigenvalue ``mu_i``, so the
largest non-stationary coefficient governs the convergence rate, and the
paper tracks which eigenvector currently "leads".

Two implementations:

* :class:`EigenbasisAnalyzer` — dense eigendecomposition; works for any
  graph up to a few thousand nodes (the paper's Figure 7 uses the
  ``100 x 100`` torus = 10^4 nodes, which is feasible but slow dense — the
  Fourier analyzer below handles tori of any size instead).
* :class:`TorusFourierAnalyzer` — on a torus the eigenvectors are the 2-D
  Fourier modes, so the coefficients are a single ``numpy.fft.fft2`` away;
  exact for the paper-default ``alpha = 1/5`` and any torus size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.linalg

from ..exceptions import ConfigurationError
from ..graphs.topology import Topology
from ..core.matrices import symmetrized_matrix

__all__ = [
    "CoefficientTrace",
    "EigenbasisAnalyzer",
    "TorusFourierAnalyzer",
]


@dataclass
class CoefficientTrace:
    """Per-round eigen-coefficient data extracted from a run.

    ``leading_index[t]`` is the index (into the analyzer's eigenvalue order,
    stationary mode excluded) of the coefficient with the largest magnitude
    at round ``t``; ``leading_value[t]`` its magnitude; ``coefficients`` the
    optional full ``(rounds, n_modes)`` magnitude array.
    """

    rounds: np.ndarray
    leading_index: np.ndarray
    leading_value: np.ndarray
    eigenvalues: np.ndarray
    coefficients: Optional[np.ndarray] = None

    def leading_eigenvalue(self) -> np.ndarray:
        """Eigenvalue of the leading mode at every recorded round."""
        return self.eigenvalues[self.leading_index]

    def stable_leader_span(self) -> Tuple[int, int]:
        """Longest contiguous span of rounds with the same leading mode.

        Returns ``(start_pos, end_pos)`` positions into ``rounds`` (the paper
        observes ``a_4`` leading from ~round 100 to ~700 on the small torus).
        """
        if self.leading_index.size == 0:
            return (0, 0)
        best = (0, 0)
        start = 0
        for i in range(1, self.leading_index.size + 1):
            if (
                i == self.leading_index.size
                or self.leading_index[i] != self.leading_index[start]
            ):
                if i - start > best[1] - best[0]:
                    best = (start, i)
                start = i
        return best


class EigenbasisAnalyzer:
    """Coefficient tracking via a dense eigendecomposition of ``M``.

    Eigenpairs are sorted by *descending* eigenvalue, so index 0 is the
    stationary mode (eigenvalue 1) and indices ``1, 2, ...`` match the
    paper's ``a_2, a_3, ...`` numbering shifted by one.

    In the heterogeneous case the analyzer diagonalises the symmetrised
    matrix ``S^{-1/2} M S^{1/2}`` and maps load vectors through ``S^{-1/2}``
    so that the transform stays orthonormal.
    """

    def __init__(self, topo: Topology, speeds: Optional[np.ndarray] = None, alphas=None):
        if topo.n > 4000:
            raise ConfigurationError(
                f"dense eigenbasis for n={topo.n} is too large; "
                "use TorusFourierAnalyzer for tori or subsample"
            )
        sym, sqrt_s = symmetrized_matrix(topo, speeds, alphas)
        vals, vecs = scipy.linalg.eigh(sym)
        order = np.argsort(vals)[::-1]
        self.eigenvalues = vals[order]
        self._basis = vecs[:, order]  # orthonormal columns
        self._sqrt_s = sqrt_s
        self.topo = topo

    def coefficients(self, load: np.ndarray) -> np.ndarray:
        """Solve ``V a = x`` — returns the signed coefficient vector."""
        load = np.asarray(load, dtype=np.float64)
        if load.shape != (self.topo.n,):
            raise ConfigurationError(
                f"load has shape {load.shape}, expected ({self.topo.n},)"
            )
        return self._basis.T @ (load / self._sqrt_s)

    def leading_mode(self, load: np.ndarray) -> Tuple[int, float]:
        """Index and magnitude of the dominant non-stationary coefficient."""
        coeff = self.coefficients(load)
        mags = np.abs(coeff)
        mags[0] = 0.0  # exclude the stationary mode
        idx = int(np.argmax(mags))
        return idx, float(mags[idx])

    def trace(
        self, loads: Sequence[np.ndarray], keep_coefficients: bool = False
    ) -> CoefficientTrace:
        """Analyze a whole run (e.g. ``SimulationResult.loads_history``)."""
        leading_idx: List[int] = []
        leading_val: List[float] = []
        all_coeffs: List[np.ndarray] = []
        for load in loads:
            coeff = self.coefficients(load)
            mags = np.abs(coeff)
            if keep_coefficients:
                all_coeffs.append(mags)
            mags = mags.copy()
            mags[0] = 0.0
            idx = int(np.argmax(mags))
            leading_idx.append(idx)
            leading_val.append(float(mags[idx]))
        return CoefficientTrace(
            rounds=np.arange(len(loads)),
            leading_index=np.asarray(leading_idx, dtype=np.int64),
            leading_value=np.asarray(leading_val, dtype=np.float64),
            eigenvalues=self.eigenvalues,
            coefficients=np.asarray(all_coeffs) if keep_coefficients else None,
        )


class TorusFourierAnalyzer:
    """Exact eigen-coefficients on 2-D tori via the FFT.

    On the ``r x c`` torus with the paper-default ``alpha = 1/5`` the
    (complex) Fourier modes diagonalise ``M`` with eigenvalues

        ``mu(a, b) = (1 + 2 cos(2 pi a / r) + 2 cos(2 pi b / c)) / 5``.

    The magnitude of the normalised FFT coefficient at frequency ``(a, b)``
    plays the role of ``|a_i|``; mode ``(0, 0)`` is stationary.  Modes are
    reported flattened in row-major frequency order.
    """

    def __init__(self, rows: int, cols: int):
        if rows < 3 or cols < 3:
            raise ConfigurationError(
                f"Fourier analyzer needs a true torus (sides >= 3), got "
                f"({rows}, {cols})"
            )
        self.rows = int(rows)
        self.cols = int(cols)
        ca = 2.0 * np.cos(2.0 * np.pi * np.arange(rows) / rows)
        cb = 2.0 * np.cos(2.0 * np.pi * np.arange(cols) / cols)
        self.eigen_grid = (1.0 + ca[:, None] + cb[None, :]) / 5.0
        self.eigenvalues = self.eigen_grid.ravel()
        # Eigenvalue classes: conjugate frequencies and symmetry-related
        # modes share an eigenvalue, so "which eigenvector leads" is only
        # well defined per class (the paper's a_4 lives in such a class).
        self.class_eigenvalues, self._class_of_mode = np.unique(
            np.round(self.eigenvalues, 12), return_inverse=True
        )
        self._stationary_class = int(
            np.argmin(np.abs(self.class_eigenvalues - 1.0))
        )

    def coefficients(self, load: np.ndarray) -> np.ndarray:
        """Magnitudes of the normalised Fourier coefficients (flattened)."""
        load = np.asarray(load, dtype=np.float64)
        if load.size != self.rows * self.cols:
            raise ConfigurationError(
                f"load has {load.size} entries, expected {self.rows * self.cols}"
            )
        grid = load.reshape(self.rows, self.cols)
        fft = np.fft.fft2(grid) / np.sqrt(self.rows * self.cols)
        return np.abs(fft).ravel()

    def leading_mode(self, load: np.ndarray) -> Tuple[Tuple[int, int], float, float]:
        """Dominant non-stationary frequency.

        Returns ``((a, b), magnitude, eigenvalue)``.
        """
        mags = self.coefficients(load).reshape(self.rows, self.cols).copy()
        mags[0, 0] = 0.0
        flat = int(np.argmax(mags))
        a, b = divmod(flat, self.cols)
        return (a, b), float(mags[a, b]), float(self.eigen_grid[a, b])

    def class_energies(self, load: np.ndarray) -> np.ndarray:
        """Total coefficient energy per eigenvalue class (basis invariant).

        Individual coefficients inside a degenerate eigenspace depend on the
        basis choice (and conjugate FFT modes always tie), but the summed
        energy per eigenvalue is invariant — this is the quantity whose
        leader stays stable over hundreds of rounds in the paper's Figure 7.
        """
        mags = self.coefficients(load)
        return np.bincount(
            self._class_of_mode,
            weights=mags * mags,
            minlength=self.class_eigenvalues.size,
        )

    def leading_class(self, load: np.ndarray) -> Tuple[int, float, float]:
        """Dominant non-stationary eigenvalue class.

        Returns ``(class_index, sqrt(energy), eigenvalue)``.
        """
        energies = self.class_energies(load)
        energies[self._stationary_class] = 0.0
        idx = int(np.argmax(energies))
        return idx, float(np.sqrt(energies[idx])), float(self.class_eigenvalues[idx])

    def trace(
        self, loads: Sequence[np.ndarray], by_class: bool = True
    ) -> CoefficientTrace:
        """Analyze a run of load vectors; mirrors the paper's Figure 7.

        ``by_class=True`` (default) tracks the leading *eigenvalue class*
        (stable leader, see :meth:`class_energies`); ``by_class=False``
        tracks the raw leading FFT mode, whose identity flickers among
        degenerate/conjugate partners.
        """
        leading_idx: List[int] = []
        leading_val: List[float] = []
        for load in loads:
            if by_class:
                idx, val, _ = self.leading_class(load)
            else:
                mags = self.coefficients(load).reshape(self.rows, self.cols).copy()
                mags[0, 0] = 0.0
                idx = int(np.argmax(mags))
                val = float(mags.ravel()[idx])
            leading_idx.append(idx)
            leading_val.append(val)
        return CoefficientTrace(
            rounds=np.arange(len(loads)),
            leading_index=np.asarray(leading_idx, dtype=np.int64),
            leading_value=np.asarray(leading_val, dtype=np.float64),
            eigenvalues=self.class_eigenvalues if by_class else self.eigenvalues,
        )
