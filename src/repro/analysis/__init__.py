"""Run analysis: eigen-coefficients, convergence measurement, imbalance.

Implements Section VI metrics 4 and 5 of the paper (impact of eigenvectors
on the load; remaining imbalance of the converged system) plus the
convergence-time extraction used to compare FOS and SOS.
"""

from .coefficients import CoefficientTrace, EigenbasisAnalyzer, TorusFourierAnalyzer
from .convergence import (
    SpeedupReport,
    convergence_round,
    decay_rate,
    measured_speedup,
    predicted_speedup,
)
from .imbalance import PlateauStats, plateau_start, remaining_imbalance
from .wavefront import Bump, bump_period, detect_bumps

__all__ = [
    "CoefficientTrace",
    "EigenbasisAnalyzer",
    "TorusFourierAnalyzer",
    "SpeedupReport",
    "convergence_round",
    "decay_rate",
    "measured_speedup",
    "predicted_speedup",
    "PlateauStats",
    "plateau_start",
    "remaining_imbalance",
    "Bump",
    "bump_period",
    "detect_bumps",
]
