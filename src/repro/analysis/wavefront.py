"""Wavefront-collision discontinuities (Section VI-A, Figures 1 and 9/10).

On the torus the paper observes "strong discontinuities of the local and
global maximum load differences which occur approximately every 1200 to
1300 steps": the point load spreads as circular wavefronts from all four
images of the loaded corner, and the metrics jump whenever the fronts
collapse at the centre — SOS momentum keeps pushing load at a node that is
already over average.

This module detects those discontinuities in a recorded metric series (a
*bump* is a strict local maximum that rises a factor above the surrounding
baseline) and estimates their period, which the Figure 1 bench compares
against the torus travel time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["Bump", "detect_bumps", "bump_period"]


@dataclass(frozen=True)
class Bump:
    """One detected discontinuity."""

    position: int
    value: float
    baseline: float

    @property
    def prominence(self) -> float:
        """Ratio of the bump value to the local baseline."""
        return self.value / self.baseline if self.baseline > 0 else np.inf


def detect_bumps(
    series: Sequence[float],
    window: int = 25,
    min_rise: float = 1.5,
    skip: int = 1,
) -> List[Bump]:
    """Find upward discontinuities in a (typically decaying) metric series.

    A position is a bump when its value is at least ``min_rise`` times the
    median of the surrounding ``window`` entries and it is the maximum of
    its window (so each collision is reported once).  The first ``skip``
    entries are ignored (the initial point-load spike is not a collision).
    """
    if window < 3:
        raise ConfigurationError(f"window must be >= 3, got {window}")
    if min_rise <= 1.0:
        raise ConfigurationError(f"min_rise must be > 1, got {min_rise}")
    y = np.asarray(series, dtype=np.float64)
    bumps: List[Bump] = []
    for i in range(max(skip, window), y.size - window):
        segment = y[i - window : i + window + 1]
        baseline = float(np.median(segment))
        if baseline <= 0:
            continue
        if y[i] >= min_rise * baseline and y[i] == segment.max():
            bumps.append(Bump(position=i, value=float(y[i]), baseline=baseline))
    return bumps


def bump_period(bumps: Sequence[Bump]) -> Optional[float]:
    """Mean spacing between consecutive bumps (None with fewer than two)."""
    if len(bumps) < 2:
        return None
    positions = np.asarray([b.position for b in bumps], dtype=np.float64)
    return float(np.diff(positions).mean())
