"""Remaining imbalance of converged discrete systems (Section VI, metric 5).

Discrete schemes cannot balance perfectly — once the system has converged
the residual "number of tokens above average ... starts to fluctuate and
does not visibly improve any more".  The paper measures this plateau level
for SOS, FOS and the hybrid scheme; these helpers detect the plateau in a
recorded run and summarise its statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError
from ..core.simulator import SimulationResult

__all__ = ["PlateauStats", "remaining_imbalance", "plateau_start"]


@dataclass
class PlateauStats:
    """Statistics of a metric over the converged tail of a run."""

    field: str
    start_round: int
    mean: float
    maximum: float
    minimum: float
    std: float
    samples: int

    def __str__(self) -> str:
        return (
            f"{self.field} plateau from round {self.start_round}: "
            f"mean {self.mean:.2f}, range [{self.minimum:.0f}, "
            f"{self.maximum:.0f}] over {self.samples} records"
        )


def plateau_start(
    result: SimulationResult,
    field: str = "max_minus_avg",
    window: int = 20,
    rel_improvement: float = 0.05,
) -> Optional[int]:
    """First record position where ``field`` stops improving.

    Scans the series with a sliding window; the plateau starts at the first
    position whose value is within ``rel_improvement`` of the minimum over
    the *following* ``window`` records (i.e. waiting longer buys almost
    nothing).  Returns the record *position* (index into ``records``), or
    ``None`` if the series never settles.
    """
    if window < 2:
        raise ConfigurationError(f"window must be >= 2, got {window}")
    series = result.series(field)
    n = series.size
    if n <= window:
        return None
    for pos in range(n - window):
        ahead_min = series[pos + 1 : pos + 1 + window].min()
        here = series[pos]
        if here <= 0:
            return pos
        if (here - ahead_min) / max(here, 1e-300) <= rel_improvement:
            return pos
    return None


def remaining_imbalance(
    result: SimulationResult,
    field: str = "max_minus_avg",
    window: int = 20,
    rel_improvement: float = 0.05,
    tail_fraction: float = 0.25,
) -> PlateauStats:
    """Plateau statistics of ``field`` for a converged run.

    Uses :func:`plateau_start` to find where fluctuation begins; if no
    plateau is detected, falls back to the last ``tail_fraction`` of the
    records (a run that is still visibly improving will then report the tail
    statistics, which is what the paper's "remaining imbalance" tables show
    anyway once runs are long enough).
    """
    if not 0.0 < tail_fraction <= 1.0:
        raise ConfigurationError(
            f"tail_fraction must be in (0, 1], got {tail_fraction}"
        )
    series = result.series(field)
    rounds = result.rounds
    pos = plateau_start(result, field, window, rel_improvement)
    if pos is None:
        pos = max(0, int(series.size * (1.0 - tail_fraction)))
    tail = series[pos:]
    return PlateauStats(
        field=field,
        start_round=int(rounds[pos]),
        mean=float(tail.mean()),
        maximum=float(tail.max()),
        minimum=float(tail.min()),
        std=float(tail.std()),
        samples=int(tail.size),
    )
