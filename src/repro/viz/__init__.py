"""Visualisation: PGM rasters, ASCII heatmaps, and CSV series export.

Reproduces the paper's Figures 9-11 (per-node grayscale rasters of the torus
load) without any imaging dependency, plus terminal-friendly companions.
"""

from .render import load_to_grayscale, render_frames, write_pgm
from .ascii import ascii_heatmap, sparkline
from .series import RESULT_COLUMNS, result_to_csv, write_csv

__all__ = [
    "load_to_grayscale",
    "write_pgm",
    "render_frames",
    "ascii_heatmap",
    "sparkline",
    "RESULT_COLUMNS",
    "result_to_csv",
    "write_csv",
]
