"""Terminal visualisations: heatmaps and sparklines.

Lightweight companions to the PGM renderer for interactive use — the
examples print these so a run can be eyeballed without leaving the shell.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["ascii_heatmap", "sparkline"]

_SHADES = " .:-=+*#%@"
_SPARKS = "▁▂▃▄▅▆▇█"


def ascii_heatmap(
    load: np.ndarray,
    shape: Sequence[int],
    width: int = 64,
    average: Optional[float] = None,
) -> str:
    """Render a torus load grid as ASCII art (dark character = imbalanced).

    Large grids are downsampled by block-averaging to at most ``width``
    columns (rows scale proportionally, halved for terminal aspect ratio).
    """
    rows, cols = (int(s) for s in shape)
    load = np.asarray(load, dtype=np.float64)
    if load.size != rows * cols:
        raise ConfigurationError(
            f"load has {load.size} entries, expected {rows * cols}"
        )
    grid = load.reshape(rows, cols)
    avg = float(grid.mean()) if average is None else float(average)
    dist = np.abs(grid - avg)

    col_step = max(1, int(np.ceil(cols / width)))
    row_step = max(1, 2 * col_step)
    r_out = (rows + row_step - 1) // row_step
    c_out = (cols + col_step - 1) // col_step
    blocks = np.zeros((r_out, c_out))
    for i in range(r_out):
        for j in range(c_out):
            blocks[i, j] = dist[
                i * row_step : (i + 1) * row_step,
                j * col_step : (j + 1) * col_step,
            ].mean()
    peak = blocks.max()
    if peak <= 0:
        idx = np.zeros_like(blocks, dtype=np.int64)
    else:
        idx = np.minimum(
            (blocks / peak * (len(_SHADES) - 1)).astype(np.int64),
            len(_SHADES) - 1,
        )
    return "\n".join("".join(_SHADES[v] for v in row) for row in idx)


def sparkline(series: Sequence[float], width: int = 60, log: bool = False) -> str:
    """One-line unicode sparkline of a series (optionally log-scaled)."""
    y = np.asarray(series, dtype=np.float64)
    if y.size == 0:
        return ""
    if y.size > width:
        # Downsample by block max so spikes remain visible.
        edges = np.linspace(0, y.size, width + 1).astype(int)
        y = np.asarray([y[a:b].max() for a, b in zip(edges[:-1], edges[1:]) if b > a])
    if log:
        y = np.log10(np.maximum(y, 1e-12))
    lo, hi = float(y.min()), float(y.max())
    if hi <= lo:
        return _SPARKS[0] * y.size
    idx = ((y - lo) / (hi - lo) * (len(_SPARKS) - 1)).astype(int)
    return "".join(_SPARKS[v] for v in idx)
