"""Time-series export for recorded runs.

Writes :class:`~repro.core.simulator.SimulationResult` metric series as CSV
(and generic column dictionaries), matching the data behind the paper's
log-scale figures so they can be re-plotted with any external tool.
"""

from __future__ import annotations

import csv
from typing import Dict, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..core.records import RECORD_FIELDS
from ..core.simulator import SimulationResult

__all__ = ["write_csv", "result_to_csv", "RESULT_COLUMNS"]

#: Metric columns exported for every simulation result (paper Section VI).
#: Alias of the canonical record-table field order.
RESULT_COLUMNS = RECORD_FIELDS


def write_csv(path: str, columns: Dict[str, Sequence]) -> str:
    """Write a dict of equal-length columns as CSV; returns the path."""
    if not columns:
        raise ConfigurationError("no columns to write")
    lengths = {name: len(vals) for name, vals in columns.items()}
    if len(set(lengths.values())) != 1:
        raise ConfigurationError(f"column lengths differ: {lengths}")
    names = list(columns)
    rows = zip(*(columns[name] for name in names))
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        writer.writerows(rows)
    return path


def result_to_csv(result: SimulationResult, path: str) -> str:
    """Export every recorded round of a simulation result as CSV.

    Consumes the columnar record table directly — no per-row Python objects
    are materialised.
    """
    return write_csv(path, result.table.to_columns())
