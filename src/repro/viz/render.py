"""Raster rendering of torus load distributions (Figures 9-11).

The paper renders each torus node as one pixel shaded by its load:

* **adaptive** shading (Figures 9/10): light pixels are close to the average
  load, dark pixels close to the extreme (maximum or minimum) load of the
  *current* frame,
* **threshold** shading (Figure 11): white = optimal load, black = more than
  ``threshold`` tokens away from optimal, linear in between.

Images are written as portable graymaps (binary PGM, P5) — viewable
everywhere, no imaging dependency needed.  An animation helper writes one
frame per recorded round, reproducing the paper's video ([3]).
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "load_to_grayscale",
    "write_pgm",
    "render_frames",
]


def load_to_grayscale(
    load: np.ndarray,
    shape: Sequence[int],
    mode: str = "adaptive",
    threshold: float = 10.0,
    average: Optional[float] = None,
) -> np.ndarray:
    """Convert a load vector to a ``uint8`` grayscale image.

    Parameters
    ----------
    load:
        Per-node loads (length ``rows * cols``).
    shape:
        ``(rows, cols)`` of the torus.
    mode:
        ``"adaptive"`` (paper Figures 9/10) or ``"threshold"`` (Figure 11).
    threshold:
        Token distance mapped to black in ``"threshold"`` mode.
    average:
        Target load; defaults to the mean of ``load``.

    Returns an array of shape ``shape`` with 255 = optimal, 0 = extreme.
    """
    rows, cols = (int(s) for s in shape)
    load = np.asarray(load, dtype=np.float64)
    if load.size != rows * cols:
        raise ConfigurationError(
            f"load has {load.size} entries, expected {rows * cols}"
        )
    grid = load.reshape(rows, cols)
    avg = float(grid.mean()) if average is None else float(average)
    dist = np.abs(grid - avg)
    if mode == "adaptive":
        extreme = float(dist.max())
        if extreme <= 0.0:
            return np.full((rows, cols), 255, dtype=np.uint8)
        frac = dist / extreme
    elif mode == "threshold":
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be > 0, got {threshold}")
        frac = np.minimum(dist / threshold, 1.0)
    else:
        raise ConfigurationError(f"unknown render mode {mode!r}")
    return np.round(255.0 * (1.0 - frac)).astype(np.uint8)


def write_pgm(path: str, image: np.ndarray) -> str:
    """Write a 2-D ``uint8`` array as a binary PGM (P5) file.

    Returns the path for convenience.
    """
    image = np.asarray(image)
    if image.ndim != 2 or image.dtype != np.uint8:
        raise ConfigurationError("image must be a 2-D uint8 array")
    rows, cols = image.shape
    header = f"P5\n{cols} {rows}\n255\n".encode("ascii")
    with open(path, "wb") as handle:
        handle.write(header)
        handle.write(image.tobytes())
    return path


def render_frames(
    loads: Sequence[np.ndarray],
    shape: Sequence[int],
    directory: str,
    prefix: str = "frame",
    mode: str = "adaptive",
    threshold: float = 10.0,
) -> list:
    """Write one PGM per load vector; returns the list of file paths.

    Feeding ``SimulationResult.loads_history`` reproduces the paper's load
    balancing video frame by frame.
    """
    os.makedirs(directory, exist_ok=True)
    paths = []
    for idx, load in enumerate(loads):
        img = load_to_grayscale(load, shape, mode=mode, threshold=threshold)
        path = os.path.join(directory, f"{prefix}-{idx:05d}.pgm")
        paths.append(write_pgm(path, img))
    return paths
