"""Negative-load analysis for second order schemes (Section V).

SOS keeps pushing load along the direction of the previous round's flow, so
a node may be asked to send more than it currently holds.  The paper splits
every round into a *send* step and a *receive* step; the load after sending
but before receiving is the transient state ``x̆_i(t)``, and "negative load"
means ``x̆_i(t) < 0``.

Result III of the paper gives the first sufficient minimum initial load that
prevents negative load:

* Observation 5:  end-of-round loads obey ``x(t) >= -sqrt(n) * Delta(0)``
  for continuous SOS with ``beta = beta_opt``.
* Theorem 10:     transient loads obey
  ``x̆(t) >= -O(sqrt(n) Delta(0) / sqrt(1 - lambda))`` (continuous SOS).
* Theorem 11:     for discrete SOS the bound gains a ``d^2`` term:
  ``x̆(t) >= -O((sqrt(n) Delta(0) + d^2) / sqrt(1 - lambda))``.

The functions below expose these bounds *with the explicit constants that
fall out of the paper's proofs* (not just the O-form), so the test-suite and
the theory bench can check measured transient minima against them.
``Delta(0) = ||x(0) - x̄||_inf`` is the initial infinity-norm imbalance.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError
from .metrics import target_loads

__all__ = [
    "initial_delta",
    "observation5_bound",
    "theorem10_bound",
    "theorem11_bound",
    "minimum_safe_initial_load",
    "NegativeLoadTracker",
]


def initial_delta(load: np.ndarray, speeds: Optional[np.ndarray] = None) -> float:
    """``Delta(0) = ||x(0) - x̄||_inf`` (Section V definitions)."""
    load = np.asarray(load, dtype=np.float64)
    if speeds is None:
        targets = np.full(load.shape, load.mean())
    else:
        targets = target_loads(float(load.sum()), np.asarray(speeds, dtype=np.float64))
    return float(np.abs(load - targets).max())


def observation5_bound(n: int, delta0: float) -> float:
    """End-of-round lower bound ``x(t) >= -sqrt(n) * Delta(0)`` (Obs. 5)."""
    if n < 1 or delta0 < 0:
        raise ConfigurationError(f"invalid n={n} or delta0={delta0}")
    return -math.sqrt(n) * delta0


def theorem10_bound(n: int, delta0: float, lam: float) -> float:
    """Transient lower bound for *continuous* SOS with ``beta = beta_opt``.

    Following the proof of Theorem 10: the total outgoing flow satisfies
    ``g(t) <= 4 sqrt(n) Delta(0) * lambda / (lambda - (beta - 1))`` and
    ``lambda - (beta - 1) > sqrt(1 - lambda) * lambda / 4``, hence
    ``g(t) <= 16 sqrt(n) Delta(0) / sqrt(1 - lambda)``; combined with
    Observation 5, ``x̆(t) >= x(t) - g(t)``:

        ``x̆(t) >= -sqrt(n) Delta(0) * (1 + 16 / sqrt(1 - lambda))``.
    """
    if not 0.0 <= lam < 1.0:
        raise ConfigurationError(f"lambda must be in [0, 1), got {lam}")
    if n < 1 or delta0 < 0:
        raise ConfigurationError(f"invalid n={n} or delta0={delta0}")
    root = math.sqrt(n) * delta0
    return -(root + 16.0 * root / math.sqrt(1.0 - lam))


def theorem11_bound(n: int, delta0: float, lam: float, max_degree: int) -> float:
    """Transient lower bound for *discrete* SOS (Theorem 11).

    The proof perturbs the flow recursion by the per-round rounding slack
    (``+ d`` per edge, ``+ d^2`` per node):
    ``g(t+1) <= (beta-1) g(t) + 4 lambda^{t+1} sqrt(n) Delta(0) + d^2``,
    which solves to the Theorem 10 bound plus ``d^2 / (2 - beta)``, and
    ``2 - beta >= sqrt(1 - lambda)``:

        ``x̆(t) >= -(sqrt(n) Delta(0) (1 + 16/sqrt(1-lambda))
                     + d^2 / sqrt(1-lambda))``.
    """
    if max_degree < 0:
        raise ConfigurationError(f"max_degree must be >= 0, got {max_degree}")
    base = theorem10_bound(n, delta0, lam)
    return base - (max_degree ** 2) / math.sqrt(1.0 - lam)


def minimum_safe_initial_load(
    n: int,
    delta0: float,
    lam: float,
    max_degree: Optional[int] = None,
) -> float:
    """Sufficient per-node minimum initial load to avoid negative load.

    If every node starts with at least this much load, the corresponding
    Theorem 10 (continuous, ``max_degree=None``) or Theorem 11 (discrete)
    bound guarantees ``x̆_i(t) >= 0`` throughout the run.
    """
    if max_degree is None:
        return -theorem10_bound(n, delta0, lam)
    return -theorem11_bound(n, delta0, lam, max_degree)


class NegativeLoadTracker:
    """Accumulates transient-load statistics across a run.

    Feed it the per-round minimum transient load (available on
    :class:`repro.core.process.StepInfo`); it tracks the overall minimum,
    the first round a negative transient occurred, and how many rounds had
    one.
    """

    def __init__(self) -> None:
        self.min_transient = math.inf
        self.first_negative_round: Optional[int] = None
        self.negative_rounds = 0
        self.rounds_seen = 0

    def observe(self, round_index: int, min_transient: float) -> None:
        """Record one round's minimum transient load."""
        self.rounds_seen += 1
        if min_transient < self.min_transient:
            self.min_transient = float(min_transient)
        if min_transient < 0.0:
            self.negative_rounds += 1
            if self.first_negative_round is None:
                self.first_negative_round = round_index

    @property
    def ever_negative(self) -> bool:
        """Whether any node was ever asked to overdraw its load."""
        return self.first_negative_round is not None

    def summary(self) -> dict:
        """Plain-dict summary for reports."""
        return {
            "min_transient": None if math.isinf(self.min_transient) else self.min_transient,
            "first_negative_round": self.first_negative_round,
            "negative_rounds": self.negative_rounds,
            "rounds_seen": self.rounds_seen,
        }
