"""Refined local divergence ``Upsilon_C(G)`` (Theorem 3).

The deviation of the randomized discrete process from its continuous
counterpart is ``O(Upsilon_C(G) * sqrt(d log n))`` w.h.p., where

    ``Upsilon_C(G) = max_k ( sum_{s=0..inf} sum_{i=1..n}
                             max_{j in N(i)} (C^C_{k,i->j}(s))^2 )^{1/2}``

generalises the refined local divergence of Berenbrink et al. [5] to
arbitrary linear schemes.  The series converges geometrically (the
contributions decay like ``lambda^s`` for FOS and ``(sqrt(beta-1))^s (s+1)``
for SOS), so we sum until the tail is provably negligible.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError, ConvergenceError
from ..graphs.topology import Topology
from .matrices import diffusion_matrix
from .schemes import ContinuousScheme, FirstOrderScheme, SecondOrderScheme
from .spectral import q_matrices

__all__ = ["refined_local_divergence", "divergence_term"]


def divergence_term(topo: Topology, p_matrix: np.ndarray) -> np.ndarray:
    """Per-node inner sum ``sum_i max_{j in N(i)} (C_{k,i->j})^2`` for one s.

    Returns a length-``n`` vector indexed by ``k``.
    """
    n = topo.n
    # For each node i the incident contributions are P[:, i] - P[:, j] over
    # neighbours j; take the max of the square per owner i, sum over i.
    inc_owner = np.repeat(np.arange(n), np.diff(topo.adj_indptr))
    diffs = p_matrix[:, inc_owner] - p_matrix[:, topo.adj_indices]
    sq = diffs * diffs  # (n_k, incidences)
    occupied = np.nonzero(np.diff(topo.adj_indptr) > 0)[0]
    if occupied.size == 0:
        return np.zeros(n, dtype=np.float64)
    starts = topo.adj_indptr[occupied]
    per_owner_max = np.maximum.reduceat(sq, starts, axis=1)
    return per_owner_max.sum(axis=1)


def refined_local_divergence(
    scheme: ContinuousScheme,
    tol: float = 1e-12,
    max_terms: int = 100000,
    return_per_node: bool = False,
):
    """Compute ``Upsilon_C(G)`` by summing the contribution series.

    Parameters
    ----------
    scheme:
        A first or second order scheme (the series uses ``M^s`` or
        ``Q(s-1)`` respectively, see Definitions 3/5 and Lemma 6).
    tol:
        Stop when a term adds less than ``tol`` relative to the running sum
        (checked over several consecutive terms to survive the oscillating
        SOS series).
    max_terms:
        Hard cap on the number of terms (raises on non-convergence).
    return_per_node:
        If true return the full per-``k`` vector instead of the max.

    Notes
    -----
    The ``s = 0`` term: for FOS ``P(0) = I`` so the term contributes
    ``max_j (delta_ki - delta_kj)^2`` sums; for SOS contributions vanish at
    ``s = 0`` (Definition 5).
    """
    topo = scheme.topo
    m = diffusion_matrix(topo, scheme.speeds, scheme.alphas)
    acc = np.zeros(topo.n, dtype=np.float64)

    if isinstance(scheme, SecondOrderScheme):
        def series():
            for q in q_matrices(m, scheme.beta, max_terms):
                yield q  # P(s) = Q(s-1); Q(0)=I corresponds to s=1
    elif isinstance(scheme, FirstOrderScheme):
        def series():
            p = np.eye(topo.n)
            yield p
            for _ in range(max_terms):
                p = m @ p
                yield p
    else:
        raise ConfigurationError(f"unsupported scheme type {type(scheme).__name__}")

    quiet_streak = 0
    for count, p in enumerate(series()):
        term = divergence_term(topo, p)
        acc += term
        total = float(acc.max())
        if total > 0 and float(term.max()) < tol * total:
            quiet_streak += 1
            if quiet_streak >= 5:
                break
        else:
            quiet_streak = 0
    else:
        raise ConvergenceError(
            f"divergence series did not converge within {max_terms} terms"
        )

    per_node = np.sqrt(acc)
    if return_per_node:
        return per_node
    return float(per_node.max())
