"""Topology churn: timed node/edge mutations applied while balancing runs.

The paper (and every engine before this module) froze the graph at
``prepare()``.  Production fleets do not hold still: nodes crash and
recover, links fail, capacity joins mid-run.  This module is the
declarative mutation layer every backend shares:

* :class:`ChurnEvent` — one timed mutation (``node_crash`` with optional
  recovery, ``node_leave``, ``node_join``, ``edge_add``, ``edge_remove``);
* :class:`ChurnSchedule` — an ordered event list plus the failure policy
  (``"handoff"``: a crashing node floors its tokens onto surviving
  neighbours; ``"freeze"``: tokens stay frozen on the dead node until it
  recovers);
* :func:`plan_churn` — compiles a schedule against a base topology into a
  :class:`ChurnPlan`: a fixed node-id *universe* (base nodes plus every
  join, so arrays never reshape mid-run) and one precomputed
  :class:`ChurnPatch` per mutation round, each validated against
  connectivity of the live subgraph.

Load-preserving semantics mirror the bounce invariant in
:mod:`repro.network.faults`: whatever the schedule does,
``sum(loads) == m`` holds over the full universe (frozen tokens included),
so the conservation checks in every engine keep passing under arbitrary
churn.  The handoff arithmetic is pure float64 (``floor(L / k)`` to each of
the first ``k - 1`` receivers, remainder to the last), so the vectorised
engines and the per-node message-passing engines stay bit-identical.

Events at round ``r`` apply at the *start* of round ``r`` (before that
round's arrivals and balancing step); round 0 is the pristine base graph.
Implicit recoveries scheduled by ``node_crash(recover_at=...)`` apply
before the explicit events of their round.

RNG stream: :func:`random_churn_schedule` draws from
``default_rng([seed, CHURN_STREAM_KEY])`` — disjoint from the per-node,
fault, latency, rounding, and arrival streams by the same key-channel
convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import ConfigurationError
from ..graphs.topology import Topology
from .metrics import max_local_difference

__all__ = [
    "CHURN_STREAM_KEY",
    "CHURN_EVENT_KINDS",
    "CHURN_POLICIES",
    "ChurnEvent",
    "ChurnSchedule",
    "ChurnPatch",
    "ChurnPlan",
    "RandomChurn",
    "node_crash",
    "node_leave",
    "node_join",
    "edge_add",
    "edge_remove",
    "plan_churn",
    "resolve_churn",
    "parse_churn_spec",
    "random_churn_schedule",
    "apply_handoffs",
    "remap_flows",
    "masked_static_values",
    "masked_dynamic_values",
]

#: Churn RNG stream id, disjoint from the per-node streams
#: ``default_rng([seed, i])``, the fault stream, and the latency stream
#: the same way :data:`repro.network.engine.FAULT_STREAM_KEY` is.
CHURN_STREAM_KEY = int.from_bytes(b"churn", "big")

CHURN_EVENT_KINDS = (
    "node_crash",
    "node_leave",
    "node_join",
    "edge_add",
    "edge_remove",
)

CHURN_POLICIES = ("handoff", "freeze")


def _edge_key(u: int, v: int) -> Tuple[int, int]:
    return (u, v) if u < v else (v, u)


@dataclass(frozen=True)
class ChurnEvent:
    """One timed topology mutation.

    ``round_index`` is the round whose *start* the event applies at and
    must be >= 1 (round 0 is the pristine base graph).  Exactly one of
    ``node`` / ``edge`` is set depending on ``kind``; ``recover_at`` only
    applies to ``node_crash`` and ``attach`` only to ``node_join``.
    """

    kind: str
    round_index: int
    node: Optional[int] = None
    edge: Optional[Tuple[int, int]] = None
    recover_at: Optional[int] = None
    attach: Tuple[int, ...] = ()

    def __post_init__(self):
        if self.kind not in CHURN_EVENT_KINDS:
            raise ConfigurationError(
                f"unknown churn event kind {self.kind!r}; "
                f"known: {CHURN_EVENT_KINDS}"
            )
        if self.round_index < 1:
            raise ConfigurationError(
                f"churn events apply from round 1 on, got round "
                f"{self.round_index} for {self.kind}"
            )
        if self.kind.startswith("node"):
            if self.node is None:
                raise ConfigurationError(f"{self.kind} event needs a node id")
        else:
            if self.edge is None:
                raise ConfigurationError(f"{self.kind} event needs an edge")
            u, v = self.edge
            if u == v:
                raise ConfigurationError(
                    f"churn edge ({u}, {v}) is a self loop"
                )
        if self.recover_at is not None:
            if self.kind != "node_crash":
                raise ConfigurationError(
                    f"recover_at only applies to node_crash, not {self.kind}"
                )
            if self.recover_at <= self.round_index:
                raise ConfigurationError(
                    f"recover_at must come after the crash round: "
                    f"{self.recover_at} <= {self.round_index}"
                )
        if self.kind == "node_join" and not self.attach:
            raise ConfigurationError(
                "node_join needs at least one attach edge"
            )


def node_crash(
    node: int, round_index: int, recover_at: Optional[int] = None
) -> ChurnEvent:
    """Node failure; under ``handoff`` its tokens move to live neighbours,
    under ``freeze`` they stay on the dead node until ``recover_at``."""
    return ChurnEvent(
        "node_crash", int(round_index), node=int(node),
        recover_at=None if recover_at is None else int(recover_at),
    )


def node_leave(node: int, round_index: int) -> ChurnEvent:
    """Graceful permanent departure: tokens always hand off, and every
    incident edge is removed for good (recovery never restores them)."""
    return ChurnEvent("node_leave", int(round_index), node=int(node))


def node_join(
    node: int, round_index: int, attach: Sequence[int]
) -> ChurnEvent:
    """A new node joins with zero load, wired to the ``attach`` nodes.

    Join ids must be contiguous from the base node count (the first join
    in schedule order is node ``n``, the next ``n + 1``, ...), so the
    universe id space is known before the run starts.
    """
    return ChurnEvent(
        "node_join", int(round_index), node=int(node),
        attach=tuple(int(a) for a in attach),
    )


def edge_add(u: int, v: int, round_index: int) -> ChurnEvent:
    """A new link comes up between two existing nodes."""
    return ChurnEvent("edge_add", int(round_index), edge=(int(u), int(v)))


def edge_remove(u: int, v: int, round_index: int) -> ChurnEvent:
    """A link fails permanently (until an explicit ``edge_add``)."""
    return ChurnEvent("edge_remove", int(round_index), edge=(int(u), int(v)))


@dataclass(frozen=True)
class ChurnSchedule:
    """An ordered list of churn events plus the crash-load policy."""

    events: Tuple[ChurnEvent, ...]
    policy: str = "handoff"

    def __init__(self, events: Sequence[ChurnEvent], policy: str = "handoff"):
        if policy not in CHURN_POLICIES:
            raise ConfigurationError(
                f"unknown churn policy {policy!r}; known: {CHURN_POLICIES}"
            )
        events = tuple(events)
        for ev in events:
            if not isinstance(ev, ChurnEvent):
                raise ConfigurationError(
                    f"ChurnSchedule events must be ChurnEvent, got {ev!r}"
                )
        object.__setattr__(self, "events", events)
        object.__setattr__(self, "policy", policy)

    @property
    def max_round(self) -> int:
        """Last round any event (or implicit recovery) touches."""
        last = 0
        for ev in self.events:
            last = max(last, ev.round_index, ev.recover_at or 0)
        return last


@dataclass(frozen=True)
class RandomChurn:
    """Deferred ``random:RATE`` spec — resolved against ``(topo, rounds,
    seed)`` at ``prepare()`` time by :func:`resolve_churn`."""

    rate: float
    policy: str = "handoff"

    def __post_init__(self):
        if not (self.rate >= 0.0 and np.isfinite(self.rate)):
            raise ConfigurationError(
                f"random churn rate must be finite and >= 0, got {self.rate}"
            )
        if self.policy not in CHURN_POLICIES:
            raise ConfigurationError(
                f"unknown churn policy {self.policy!r}; "
                f"known: {CHURN_POLICIES}"
            )


@dataclass(frozen=True)
class ChurnPatch:
    """Everything an engine needs at one mutation round.

    ``handoffs`` are ``(source, receivers)`` pairs in event order;
    ``topo`` is the live graph over the fixed universe (dead and unborn
    nodes are simply isolated); ``edge_map[k]`` is the edge id the new
    edge ``k`` had in the *previous* segment's topology, or ``-1`` for an
    edge with no predecessor (its SOS flow memory starts at zero).
    """

    round_index: int
    handoffs: Tuple[Tuple[int, Tuple[int, ...]], ...]
    topo: Topology
    active: np.ndarray
    active_idx: np.ndarray
    n_active: int
    edge_map: np.ndarray


@dataclass(frozen=True)
class ChurnPlan:
    """A compiled, validated churn schedule over a fixed node universe."""

    n_base: int
    n_univ: int
    policy: str
    topo0: Topology
    active0: np.ndarray
    active0_idx: np.ndarray
    patches: Dict[int, ChurnPatch]
    max_round: int

    def patch_at(self, round_index: int) -> Optional[ChurnPatch]:
        return self.patches.get(round_index)

    def expand_load(self, load: np.ndarray) -> np.ndarray:
        """Zero-pad a base-sized load vector/plane to the universe size."""
        load = np.asarray(load, dtype=np.float64)
        if load.shape[0] != self.n_base:
            raise ConfigurationError(
                f"initial load has {load.shape[0]} rows, the churn plan's "
                f"base topology has {self.n_base} nodes"
            )
        out = np.zeros((self.n_univ,) + load.shape[1:], dtype=np.float64)
        out[: self.n_base] = load
        return out


def _active_subgraph_connected(
    adj: Dict[int, set], active: np.ndarray
) -> bool:
    """Connectivity of the live subgraph induced on the active nodes."""
    idx = np.nonzero(active)[0]
    if idx.size == 0:
        return False
    start = int(idx[0])
    seen = {start}
    stack = [start]
    while stack:
        v = stack.pop()
        for u in adj[v]:
            if active[u] and u not in seen:
                seen.add(u)
                stack.append(u)
    return len(seen) == idx.size


def plan_churn(topo: Topology, schedule: ChurnSchedule) -> ChurnPlan:
    """Compile and validate a schedule against a base topology.

    Raises :class:`~repro.exceptions.ConfigurationError` on any invalid
    transition: out-of-range ids, non-contiguous join ids, crashing an
    already-dead node, duplicating a present edge, removing an absent
    one, a handoff with no live receiver, or any round whose live
    subgraph ends up disconnected (including recovery rounds).
    """
    n_base = topo.n
    events = sorted(
        schedule.events, key=lambda ev: ev.round_index
    )  # stable: same-round events keep schedule order
    join_ids = [ev.node for ev in events if ev.kind == "node_join"]
    for i, node in enumerate(join_ids):
        if node != n_base + i:
            raise ConfigurationError(
                f"join ids must be contiguous from the base node count: "
                f"join #{i} must be node {n_base + i}, got {node}"
            )
    n_univ = n_base + len(join_ids)

    present = {
        (int(u), int(v)) for u, v in zip(topo.edge_u, topo.edge_v)
    }
    adj: Dict[int, set] = {i: set() for i in range(n_univ)}
    for u, v in present:
        adj[u].add(v)
        adj[v].add(u)
    active = np.zeros(n_univ, dtype=bool)
    active[:n_base] = True
    born = active.copy()

    by_round: Dict[int, List[ChurnEvent]] = {}
    recoveries: Dict[int, List[int]] = {}
    for ev in events:
        by_round.setdefault(ev.round_index, []).append(ev)
        if ev.recover_at is not None:
            recoveries.setdefault(ev.recover_at, [])
    rounds = sorted(
        set(by_round)
        | {ev.recover_at for ev in events if ev.recover_at is not None}
    )

    def _check_node(v: int, what: str) -> None:
        if not 0 <= v < n_univ:
            raise ConfigurationError(
                f"{what}: node {v} out of range for universe of {n_univ}"
            )

    if n_univ == n_base:
        topo0 = topo
    else:
        topo0 = Topology(
            n_univ,
            list(zip(topo.edge_u.tolist(), topo.edge_v.tolist())),
            name=f"{topo.name}|churn",
        )
    prev_topo = topo0
    patches: Dict[int, ChurnPatch] = {}

    for r in rounds:
        handoffs: List[Tuple[int, Tuple[int, ...]]] = []
        for v in sorted(recoveries.get(r, ())):
            # Implicit recoveries first; a frozen node returns with its
            # frozen load, a handed-off one with zero.
            active[v] = True
        for ev in by_round.get(r, ()):
            if ev.kind in ("node_crash", "node_leave"):
                v = ev.node
                _check_node(v, ev.kind)
                if not active[v]:
                    raise ConfigurationError(
                        f"{ev.kind} at round {r}: node {v} is not active"
                    )
                active[v] = False
                wants_handoff = (
                    ev.kind == "node_leave" or schedule.policy == "handoff"
                )
                if wants_handoff:
                    receivers = tuple(
                        sorted(u for u in adj[v] if active[u])
                    )
                    if not receivers:
                        raise ConfigurationError(
                            f"{ev.kind} at round {r}: node {v} has no live "
                            f"neighbour to hand its load to"
                        )
                    handoffs.append((v, receivers))
                elif ev.recover_at is None:
                    raise ConfigurationError(
                        f"node_crash at round {r} under the freeze policy "
                        f"needs recover_at (otherwise node {v}'s tokens "
                        f"are stranded forever)"
                    )
                if ev.kind == "node_crash" and ev.recover_at is not None:
                    recoveries.setdefault(ev.recover_at, []).append(v)
                if ev.kind == "node_leave":
                    for u in list(adj[v]):
                        present.discard(_edge_key(u, v))
                        adj[u].discard(v)
                    adj[v].clear()
            elif ev.kind == "node_join":
                v = ev.node
                _check_node(v, "node_join")
                if born[v]:
                    raise ConfigurationError(
                        f"node_join at round {r}: node {v} already exists"
                    )
                born[v] = True
                active[v] = True
                any_live = False
                for u in ev.attach:
                    _check_node(u, "node_join attach")
                    if u == v:
                        raise ConfigurationError(
                            f"node_join at round {r}: self attach at {v}"
                        )
                    if not born[u]:
                        raise ConfigurationError(
                            f"node_join at round {r}: attach target {u} "
                            f"does not exist yet"
                        )
                    key = _edge_key(u, v)
                    if key in present:
                        raise ConfigurationError(
                            f"node_join at round {r}: duplicate attach "
                            f"edge {key}"
                        )
                    present.add(key)
                    adj[u].add(v)
                    adj[v].add(u)
                    any_live = any_live or bool(active[u])
                if not any_live:
                    raise ConfigurationError(
                        f"node_join at round {r}: node {v} has no live "
                        f"attach target"
                    )
            else:  # edge_add / edge_remove
                u, v = ev.edge
                _check_node(u, ev.kind)
                _check_node(v, ev.kind)
                if not (born[u] and born[v]):
                    raise ConfigurationError(
                        f"{ev.kind} at round {r}: endpoint of ({u}, {v}) "
                        f"does not exist yet"
                    )
                key = _edge_key(u, v)
                if ev.kind == "edge_add":
                    if key in present:
                        raise ConfigurationError(
                            f"edge_add at round {r}: edge {key} is already "
                            f"present"
                        )
                    present.add(key)
                    adj[u].add(v)
                    adj[v].add(u)
                else:
                    if key not in present:
                        raise ConfigurationError(
                            f"edge_remove at round {r}: edge {key} is not "
                            f"present"
                        )
                    present.discard(key)
                    adj[u].discard(v)
                    adj[v].discard(u)

        if not _active_subgraph_connected(adj, active):
            raise ConfigurationError(
                f"churn schedule disconnects the live graph at round {r}"
            )

        live_edges = sorted(
            key for key in present if active[key[0]] and active[key[1]]
        )
        live_topo = Topology(
            n_univ, live_edges, name=f"{topo.name}|churn@{r}"
        )
        prev_index = {
            (int(u), int(v)): k
            for k, (u, v) in enumerate(
                zip(prev_topo.edge_u, prev_topo.edge_v)
            )
        }
        edge_map = np.array(
            [
                prev_index.get((int(u), int(v)), -1)
                for u, v in zip(live_topo.edge_u, live_topo.edge_v)
            ],
            dtype=np.int64,
        ).reshape(live_topo.m_edges)
        active_arr = active.copy()
        active_arr.setflags(write=False)
        active_idx = np.nonzero(active_arr)[0]
        patches[r] = ChurnPatch(
            round_index=r,
            handoffs=tuple(handoffs),
            topo=live_topo,
            active=active_arr,
            active_idx=active_idx,
            n_active=int(active_idx.size),
            edge_map=edge_map,
        )
        prev_topo = live_topo

    active0 = np.zeros(n_univ, dtype=bool)
    active0[:n_base] = True
    active0.setflags(write=False)
    return ChurnPlan(
        n_base=n_base,
        n_univ=n_univ,
        policy=schedule.policy,
        topo0=topo0,
        active0=active0,
        active0_idx=np.nonzero(active0)[0],
        patches=patches,
        max_round=rounds[-1] if rounds else 0,
    )


def resolve_churn(topo: Topology, config) -> Optional[ChurnPlan]:
    """Materialise ``config.churn`` into a :class:`ChurnPlan` (or None).

    Accepts ``None``, a spec string, a :class:`RandomChurn`, a
    :class:`ChurnSchedule`, or an already-compiled :class:`ChurnPlan`
    (returned as-is); random specs draw their schedule from
    ``default_rng([config.seed, CHURN_STREAM_KEY])`` so every backend
    resolves the identical plan.
    """
    churn = getattr(config, "churn", None)
    if churn is None:
        return None
    if isinstance(churn, ChurnPlan):
        # Already compiled (the sharded engine broadcasts the parent's
        # plan so every worker patches the identical universe).
        return churn
    if isinstance(churn, str):
        churn = parse_churn_spec(churn)
    if isinstance(churn, RandomChurn):
        churn = random_churn_schedule(
            topo, churn.rate, config.rounds, config.seed, policy=churn.policy
        )
    if not isinstance(churn, ChurnSchedule):
        raise ConfigurationError(
            f"cannot interpret churn {churn!r}; pass a ChurnSchedule, a "
            f"spec string, or None"
        )
    return plan_churn(topo, churn)


# ----------------------------------------------------------------------
# Load surgery shared by every backend
# ----------------------------------------------------------------------
def apply_handoffs(load: np.ndarray, handoffs) -> np.ndarray:
    """Apply crash/leave handoffs in place on a ``(n,)`` or ``(n, B)`` plane.

    ``floor(L / k)`` tokens to each of the first ``k - 1`` receivers, the
    remainder to the last — pure float64, so the message-passing engines
    (python floats, ``math.floor``) produce bit-identical loads.
    """
    for src, receivers in handoffs:
        amount = np.array(load[src], copy=True)
        k = len(receivers)
        share = np.floor(amount / k)
        for j in receivers[:-1]:
            load[j] += share
        load[receivers[-1]] += amount - share * (k - 1)
        load[src] = 0.0
    return load


def remap_flows(flows: np.ndarray, edge_map: np.ndarray) -> np.ndarray:
    """Carry per-edge flow memory across a topology patch.

    Edges that survived keep their flow; new edges start at zero, so the
    SOS momentum term sees exactly what a freshly-hello'd network link
    would.
    """
    out = np.zeros(
        (edge_map.shape[0],) + flows.shape[1:], dtype=flows.dtype
    )
    keep = edge_map >= 0
    out[keep] = flows[edge_map[keep]]
    return out


# ----------------------------------------------------------------------
# Masked metric helpers (shared by the reference and network engines,
# mirrored plane-wise by the batched engine)
# ----------------------------------------------------------------------
def masked_static_values(
    topo: Topology, load: np.ndarray, active_idx: np.ndarray
) -> Dict[str, float]:
    """Static record metrics over the active nodes only.

    Imbalance is measured against the *active* average (dead nodes are
    not balancing targets), while ``total_load`` stays the full-universe
    sum so conservation is visible even under the freeze policy.
    """
    la = load[active_idx]
    n_active = la.shape[0]
    avg = la.sum() / n_active
    dev = la - avg
    return {
        "max_minus_avg": float(dev.max()),
        "min_minus_avg": float(dev.min()),
        "max_local_diff": max_local_difference(topo, load),
        "potential_per_node": float((dev * dev).sum() / n_active),
        "min_load": float(la.min()),
        "total_load": float(load.sum()),
    }


def masked_dynamic_values(
    topo: Topology, load: np.ndarray, active_idx: np.ndarray
) -> Dict[str, float]:
    """Dynamic record metrics over the active nodes only."""
    la = load[active_idx]
    n_active = la.shape[0]
    mean = la.sum() / n_active
    dev = la - mean
    return {
        "total_load": float(load.sum()),
        "max_minus_avg": float(la.max() - mean),
        "max_local_diff": max_local_difference(topo, load),
        "potential_per_node": float((dev * dev).sum() / n_active),
    }


# ----------------------------------------------------------------------
# Spec parsing and random schedules
# ----------------------------------------------------------------------
def parse_churn_spec(
    spec: Union[str, ChurnSchedule, RandomChurn, None]
) -> Union[ChurnSchedule, RandomChurn, None]:
    """Parse a CLI-style churn spec into a schedule.

    Semicolon-separated terms (``ChurnSchedule`` / ``RandomChurn`` /
    ``None`` pass through):

    * ``crash:V@R`` or ``crash:V@R-R2`` — node ``V`` crashes at round
      ``R`` (recovering at ``R2``),
    * ``leave:V@R`` — node ``V`` leaves for good,
    * ``join:V@R:U1+U2+...`` — node ``V`` joins wired to ``U1, U2, ...``,
    * ``edge-:U-V@R`` / ``edge+:U-V@R`` — link removal / addition,
    * ``policy:handoff`` or ``policy:freeze`` — crash-load policy,
    * ``random:RATE`` — a random schedule at ``RATE`` expected events per
      round (resolved against the topology and round count at prepare
      time; combines only with a ``policy:`` term).
    """
    if spec is None or isinstance(spec, (ChurnSchedule, RandomChurn, ChurnPlan)):
        # A precompiled ChurnPlan passes through too: the sharded engine
        # resolves the plan once in the parent and broadcasts it to its
        # workers, whose configs re-validate on arrival.
        return spec
    if not isinstance(spec, str):
        raise ConfigurationError(
            f"cannot interpret churn spec {spec!r}; pass a ChurnSchedule "
            "or a spec string (crash:... | leave:... | join:... | "
            "edge-:... | edge+:... | policy:... | random:RATE)"
        )
    events: List[ChurnEvent] = []
    policy = "handoff"
    random_rate: Optional[float] = None
    terms = [t.strip() for t in spec.split(";") if t.strip()]
    if not terms:
        raise ConfigurationError(f"empty churn spec {spec!r}")

    def _at(rest: str, what: str) -> Tuple[str, int]:
        head, sep, r = rest.rpartition("@")
        if not sep:
            raise ConfigurationError(
                f"bad churn term {what!r}: missing @ROUND"
            )
        return head, int(r)

    try:
        for term in terms:
            key, _, rest = term.partition(":")
            key = key.strip().lower()
            if key == "policy":
                if rest not in CHURN_POLICIES:
                    raise ConfigurationError(
                        f"unknown churn policy {rest!r}; "
                        f"known: {CHURN_POLICIES}"
                    )
                policy = rest
            elif key == "random":
                random_rate = float(rest)
            elif key == "crash":
                # crash:V@R or crash:V@R-R2 (recovery round after the -)
                head, sep_at, rpart = rest.rpartition("@")
                if not sep_at:
                    raise ConfigurationError(
                        f"bad churn term {term!r}: crash:V@R[-R2]"
                    )
                r1, sep2, r2 = rpart.partition("-")
                events.append(
                    node_crash(
                        int(head), int(r1),
                        recover_at=int(r2) if sep2 else None,
                    )
                )
            elif key == "leave":
                head, r = _at(rest, term)
                events.append(node_leave(int(head), r))
            elif key == "join":
                vpart, sep, attach_part = rest.partition(":")
                if not sep:
                    raise ConfigurationError(
                        f"bad churn term {term!r}: join:V@R:U1+U2+..."
                    )
                head, r = _at(vpart, term)
                attach = [
                    int(a) for a in attach_part.split("+") if a.strip()
                ]
                events.append(node_join(int(head), r, attach))
            elif key in ("edge-", "edge+"):
                head, r = _at(rest, term)
                upart, sep, vpart = head.partition("-")
                if not sep:
                    raise ConfigurationError(
                        f"bad churn term {term!r}: {key}:U-V@R"
                    )
                maker = edge_remove if key == "edge-" else edge_add
                events.append(maker(int(upart), int(vpart), r))
            else:
                raise ConfigurationError(
                    f"unknown churn term {term!r}; known: crash, leave, "
                    f"join, edge-, edge+, policy, random"
                )
    except ValueError as exc:  # int()/float() parse failures
        raise ConfigurationError(
            f"bad churn spec {spec!r}: {exc}"
        ) from None
    if random_rate is not None:
        if events:
            raise ConfigurationError(
                "random:RATE cannot be combined with explicit churn events"
            )
        return RandomChurn(rate=random_rate, policy=policy)
    return ChurnSchedule(events, policy=policy)


def random_churn_schedule(
    topo: Topology,
    rate: float,
    rounds: int,
    seed: int,
    policy: str = "handoff",
) -> ChurnSchedule:
    """A random, always-valid churn schedule at ``rate`` expected events
    per round.

    Draws crash-with-recovery and edge remove / re-add events from
    ``default_rng([seed, CHURN_STREAM_KEY])``; each candidate is accepted
    only if the accumulated schedule still compiles (connectivity and
    handoff receivers included), so the result is valid by construction.
    Joins are never generated — their contiguous-id bookkeeping belongs
    to explicit schedules.
    """
    if rate < 0.0:
        raise ConfigurationError(f"churn rate must be >= 0, got {rate}")
    rng = np.random.default_rng([int(seed), CHURN_STREAM_KEY])
    events: List[ChurnEvent] = []
    removed_pool: List[Tuple[int, int]] = []
    base_edges = list(zip(topo.edge_u.tolist(), topo.edge_v.tolist()))

    def _accepts(candidate: ChurnEvent) -> bool:
        try:
            plan_churn(topo, ChurnSchedule(events + [candidate], policy))
        except ConfigurationError:
            return False
        return True

    for r in range(1, int(rounds) + 1):
        for _ in range(int(rng.poisson(rate))):
            pick = rng.random()
            if pick < 0.5:
                v = int(rng.integers(0, topo.n))
                recover = r + 1 + int(rng.integers(0, 5))
                cand = node_crash(v, r, recover_at=recover)
            elif pick < 0.75 and removed_pool:
                u, v = removed_pool[int(rng.integers(0, len(removed_pool)))]
                cand = edge_add(u, v, r)
            elif base_edges:
                u, v = base_edges[int(rng.integers(0, len(base_edges)))]
                cand = edge_remove(u, v, r)
            else:
                continue
            if _accepts(cand):
                events.append(cand)
                if cand.kind == "edge_remove":
                    removed_pool.append(cand.edge)
                elif cand.kind == "edge_add":
                    removed_pool.remove(cand.edge)
    return ChurnSchedule(events, policy=policy)
