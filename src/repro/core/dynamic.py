"""Dynamic load balancing: tokens arrive and depart while balancing runs.

The paper studies the *static* problem (a fixed batch of tokens), but its
motivation — finite element simulations and other parallel computations —
generates work continuously.  This module extends the simulator to dynamic
workloads: an :class:`ArrivalModel` injects (and optionally consumes) tokens
each round, and :class:`DynamicSimulator` interleaves arrivals with
balancing steps while recording imbalance relative to the *current* total.

This is the "future work" regime: the interesting quantity is the steady
state — with SOS the imbalance stays bounded by the per-round arrival volume
plus the discrete residual, which `benchmarks/bench_dynamic.py` measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..graphs.topology import Topology
from .metrics import max_local_difference, max_minus_average, normalized_potential
from .process import LoadBalancingProcess
from .state import LoadState

__all__ = [
    "ArrivalModel",
    "NoArrivals",
    "PoissonArrivals",
    "BurstArrivals",
    "HotspotArrivals",
    "DynamicRoundRecord",
    "DynamicResult",
    "DynamicSimulator",
]


class ArrivalModel:
    """Produces the per-node token delta for each round.

    Positive entries are newly created tokens; negative entries consume
    existing tokens (consumption is clamped so no node goes below zero, and
    the clamped amount is reported so totals stay exact).
    """

    def deltas(self, topo: Topology, round_index: int,
               rng: np.random.Generator) -> np.ndarray:
        """Integral per-node load delta for this round."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NoArrivals(ArrivalModel):
    """Static workload (reduces to the paper's setting)."""

    def deltas(self, topo, round_index, rng):
        return np.zeros(topo.n)


class PoissonArrivals(ArrivalModel):
    """Independent Poisson arrivals at every node, optional departures.

    Parameters
    ----------
    rate:
        Expected new tokens per node per round.
    departure_rate:
        Expected consumed tokens per node per round (work being finished).
        With ``departure_rate == rate`` the total stays balanced in
        expectation.
    """

    def __init__(self, rate: float, departure_rate: float = 0.0):
        if rate < 0 or departure_rate < 0:
            raise ConfigurationError("rates must be >= 0")
        self.rate = float(rate)
        self.departure_rate = float(departure_rate)

    def deltas(self, topo, round_index, rng):
        out = rng.poisson(self.rate, size=topo.n).astype(np.float64)
        if self.departure_rate > 0:
            out -= rng.poisson(self.departure_rate, size=topo.n)
        return out

    def __repr__(self) -> str:
        return (
            f"PoissonArrivals(rate={self.rate}, "
            f"departure_rate={self.departure_rate})"
        )


class BurstArrivals(ArrivalModel):
    """A burst of tokens lands on one random node every ``period`` rounds."""

    def __init__(self, burst: int, period: int):
        if burst < 0 or period < 1:
            raise ConfigurationError("need burst >= 0 and period >= 1")
        self.burst = int(burst)
        self.period = int(period)

    def deltas(self, topo, round_index, rng):
        out = np.zeros(topo.n)
        if round_index % self.period == 0:
            out[int(rng.integers(0, topo.n))] = float(self.burst)
        return out

    def __repr__(self) -> str:
        return f"BurstArrivals(burst={self.burst}, period={self.period})"


class HotspotArrivals(ArrivalModel):
    """Deterministic arrivals concentrated on fixed hotspot nodes."""

    def __init__(self, nodes: Sequence[int], rate: int):
        if rate < 0:
            raise ConfigurationError("rate must be >= 0")
        self.nodes = [int(v) for v in nodes]
        if not self.nodes:
            raise ConfigurationError("need at least one hotspot node")
        self.rate = int(rate)

    def deltas(self, topo, round_index, rng):
        for v in self.nodes:
            if not 0 <= v < topo.n:
                raise ConfigurationError(f"hotspot {v} out of range")
        out = np.zeros(topo.n)
        out[self.nodes] = float(self.rate)
        return out

    def __repr__(self) -> str:
        return f"HotspotArrivals(nodes={self.nodes}, rate={self.rate})"


@dataclass(frozen=True)
class DynamicRoundRecord:
    """Per-round metrics of a dynamic run (targets move with the total)."""

    round_index: int
    total_load: float
    arrived: float
    departed: float
    max_minus_avg: float
    max_local_diff: float
    potential_per_node: float


@dataclass
class DynamicResult:
    """Outcome of a dynamic simulation."""

    records: List[DynamicRoundRecord]
    final_state: LoadState

    def series(self, fieldname: str) -> np.ndarray:
        """Column ``fieldname`` as a float array."""
        return np.asarray(
            [getattr(r, fieldname) for r in self.records], dtype=np.float64
        )

    def steady_state_imbalance(self, tail_fraction: float = 0.5) -> float:
        """Mean max-above-average over the trailing part of the run."""
        if not 0.0 < tail_fraction <= 1.0:
            raise ConfigurationError(
                f"tail_fraction must be in (0, 1], got {tail_fraction}"
            )
        series = self.series("max_minus_avg")
        start = int(series.size * (1.0 - tail_fraction))
        return float(series[start:].mean())


class DynamicSimulator:
    """Interleaves token arrivals with balancing rounds.

    Each round: (1) the arrival model's deltas are applied (departures are
    clamped at zero so loads never go negative through consumption), (2) one
    balancing step runs, (3) metrics are recorded against the *current*
    average — the natural target when the total changes over time.
    """

    def __init__(
        self,
        process: LoadBalancingProcess,
        arrivals: ArrivalModel,
        rng: Optional[np.random.Generator] = None,
    ):
        self.process = process
        self.arrivals = arrivals
        self.rng = rng or np.random.default_rng()

    def run(self, initial_load: np.ndarray, rounds: int) -> DynamicResult:
        """Run ``rounds`` arrival+balance rounds from ``initial_load``."""
        if rounds < 0:
            raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
        topo = self.process.topo
        state = self.process.initial_state(initial_load)
        records: List[DynamicRoundRecord] = []
        for _ in range(rounds):
            deltas = np.asarray(
                self.arrivals.deltas(topo, state.round_index, self.rng),
                dtype=np.float64,
            )
            arrivals = float(np.maximum(deltas, 0.0).sum())
            wanted_departures = np.maximum(-deltas, 0.0)
            # Consume at most the (non-negative part of the) current load —
            # SOS can leave transiently negative loads, which departures
            # must not touch.
            actual_departures = np.minimum(
                wanted_departures, np.maximum(state.load, 0.0)
            )
            new_load = state.load + np.maximum(deltas, 0.0) - actual_departures
            state = LoadState(
                load=new_load, flows=state.flows, round_index=state.round_index
            )
            state, _ = self.process.step(state)
            records.append(
                DynamicRoundRecord(
                    round_index=state.round_index,
                    total_load=state.total_load,
                    arrived=arrivals,
                    departed=float(actual_departures.sum()),
                    max_minus_avg=max_minus_average(state.load),
                    max_local_diff=max_local_difference(topo, state.load),
                    potential_per_node=normalized_potential(state.load),
                )
            )
        return DynamicResult(records=records, final_state=state)
