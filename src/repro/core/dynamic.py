"""Dynamic load balancing: tokens arrive and depart while balancing runs.

The paper studies the *static* problem (a fixed batch of tokens), but its
motivation — finite element simulations and other parallel computations —
generates work continuously.  This module extends the simulator to dynamic
workloads: an :class:`ArrivalModel` injects (and optionally consumes) tokens
each round, and :class:`DynamicSimulator` interleaves arrivals with
balancing steps while recording imbalance relative to the *current* total.

This is the "future work" regime: the interesting quantity is the steady
state — with SOS the imbalance stays bounded by the per-round arrival volume
plus the discrete residual, which `benchmarks/bench_dynamic.py` measures.

Like the static :class:`~repro.core.simulator.Simulator`, the driver is
split into an incremental core (:meth:`DynamicSimulator.start` /
:meth:`inject` / :meth:`advance` / :meth:`finish`) so the engine adapters
(:mod:`repro.engines`) can interleave the arrival hook with balancing steps
through *exactly* the code path :meth:`DynamicSimulator.run` uses.  Records
go into a columnar :class:`~repro.core.records.DynamicRecordTable` — one
row per executed round with exact token accounting
(``total[t] == total[t-1] + arrived[t] - departed[t]``, ``clamped`` being
the departure volume refused because a node had nothing left to consume).

RNG stream layout
-----------------
Replica ``b`` of a batched dynamic run draws its arrivals from the
*spawned* stream :func:`arrival_stream`\\ ``(seed, b)`` — i.e.
``default_rng(SeedSequence(seed, spawn_key=(b,)))`` — which is independent
of the rounding generator (``default_rng(seed + b)`` on the per-replica
backends, the spawned per-replica stream
:func:`~repro.engines.base.rounding_stream`\\ ``(seed, b)`` with
two-element spawn key ``(b, 1)`` on the vectorised ones).  Seed a
standalone :class:`DynamicSimulator` with ``rng=arrival_stream(seed, b)``
to reproduce engine replica ``b`` bit for bit (for deterministic
roundings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from ..exceptions import ConfigurationError, SimulationError
from ..graphs.topology import Topology
from .metrics import max_local_difference, max_minus_average, normalized_potential
from .process import LoadBalancingProcess
from .records import DynamicRecordTable
from .state import LoadState

__all__ = [
    "ArrivalModel",
    "NoArrivals",
    "PoissonArrivals",
    "BurstArrivals",
    "HotspotArrivals",
    "TraceArrivals",
    "ScaledArrivals",
    "make_arrival_model",
    "arrival_stream",
    "arrival_streams",
    "batch_arrival_stream",
    "DynamicRoundRecord",
    "DynamicResult",
    "DynamicRun",
    "DynamicSimulator",
]


class ArrivalModel:
    """Produces the per-node token delta for each round.

    Positive entries are newly created tokens; negative entries consume
    existing tokens (consumption is clamped so no node goes below zero, and
    the clamped amount is reported so totals stay exact).
    """

    def deltas(self, topo: Topology, round_index: int,
               rng: np.random.Generator) -> np.ndarray:
        """Integral per-node load delta for this round."""
        raise NotImplementedError

    def batch_deltas(self, topo: Topology, round_index: int,
                     rng: np.random.Generator, n_replicas: int) -> np.ndarray:
        """Per-node deltas for a whole replica batch: ``(n, B)``, one column
        per replica, all drawn from the *one* generator ``rng``.

        This is the ``arrival_sampling="batch"`` hook: replicas sampled
        together from a shared batch stream instead of one spawned stream
        each, trading stream-for-stream reproducibility against the
        reference engine for vectorised sampling.  The default draws the
        replicas one :meth:`deltas` call at a time (correct for any model);
        models whose sampling vectorises — per-node Poisson — override it
        with a single batched draw.
        """
        return np.stack(
            [self.deltas(topo, round_index, rng) for _ in range(n_replicas)],
            axis=1,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NoArrivals(ArrivalModel):
    """Static workload (reduces to the paper's setting)."""

    def deltas(self, topo, round_index, rng):
        return np.zeros(topo.n)


class PoissonArrivals(ArrivalModel):
    """Independent Poisson arrivals at every node, optional departures.

    Parameters
    ----------
    rate:
        Expected new tokens per node per round.
    departure_rate:
        Expected consumed tokens per node per round (work being finished).
        With ``departure_rate == rate`` the total stays balanced in
        expectation.
    """

    #: Rates above this fall back to ``rng.poisson`` in batch mode (the
    #: inverse-CDF table would be long and the generator's own transformed
    #: rejection method is competitive at large lambda).
    _TABLE_RATE_LIMIT = 64.0

    def __init__(self, rate: float, departure_rate: float = 0.0):
        if rate < 0 or departure_rate < 0:
            raise ConfigurationError("rates must be >= 0")
        self.rate = float(rate)
        self.departure_rate = float(departure_rate)
        self._cdf_cache: dict = {}

    def deltas(self, topo, round_index, rng):
        out = rng.poisson(self.rate, size=topo.n).astype(np.float64)
        if self.departure_rate > 0:
            out -= rng.poisson(self.departure_rate, size=topo.n)
        return out

    @staticmethod
    def _pmf_table(rate: float) -> np.ndarray:
        """Poisson(rate) pmf out to float64 resolution (index = count)."""
        terms = [np.exp(-rate)]
        k = 0
        # Extend until the tail mass vanishes at float64 resolution
        # (the loop is bounded: ~rate + 40*sqrt(rate) + 50 terms).
        while terms[-1] > 1e-18 * max(1.0, rate) or k < rate:
            k += 1
            terms.append(terms[-1] * rate / k)
        return np.asarray(terms)

    def _cdf(self, rate: float) -> np.ndarray:
        """Cumulative Poisson(rate) table out to float64 resolution."""
        cdf = self._cdf_cache.get(rate)
        if cdf is None:
            cdf = np.cumsum(self._pmf_table(rate))
            self._cdf_cache[rate] = cdf
        return cdf

    def _net_cdf(self) -> tuple:
        """CDF and offset of the *net* delta ``A - D`` (Skellam law).

        The engine consumes only the net per-node delta (the arrival hook
        derives arrived/departed from its sign), so one inverse-CDF draw
        from the exact difference distribution — the convolution of the
        arrival pmf with the reversed departure pmf — replaces two Poisson
        draws without changing anything the process observes.
        """
        key = ("net", self.rate, self.departure_rate)
        cached = self._cdf_cache.get(key)
        if cached is None:
            pmf_a = self._pmf_table(self.rate)
            pmf_d = self._pmf_table(self.departure_rate)
            # index i of the convolution = net delta i - (len(pmf_d) - 1)
            net = np.convolve(pmf_a, pmf_d[::-1])
            cached = (np.cumsum(net), len(pmf_d) - 1)
            self._cdf_cache[key] = cached
        return cached

    def _sample_batch(self, rng, rate: float, shape) -> np.ndarray:
        """Poisson(rate) counts for a whole plane.

        Small rates (the per-node-churn regime) sample by inverse CDF
        against a cached table: one fast uniform per count plus a
        ``searchsorted`` — several times cheaper per variate than the
        generator's poisson method, which is what actually lifts the
        Poisson-churn sampling ceiling.  The table carries the pmf to
        float64 resolution, so counts are Poisson-distributed exactly up
        to the uniform draw's own 2^-53 granularity.
        """
        if rate == 0.0:
            return np.zeros(shape)
        if rate > self._TABLE_RATE_LIMIT:
            return rng.poisson(rate, size=shape).astype(np.float64)
        cdf = self._cdf(rate)
        u = rng.random(shape)
        return np.searchsorted(cdf, u.ravel(), side="right").reshape(
            shape
        ).astype(np.float64)

    def batch_deltas(self, topo, round_index, rng, n_replicas):
        # One vectorised draw for the whole (n, B) plane from the shared
        # batch stream; with departures, a single draw from the exact net
        # (Skellam) distribution instead of two Poisson draws.
        shape = (topo.n, n_replicas)
        if self.departure_rate == 0.0:
            return self._sample_batch(rng, self.rate, shape)
        if max(self.rate, self.departure_rate) > self._TABLE_RATE_LIMIT:
            out = self._sample_batch(rng, self.rate, shape)
            out -= self._sample_batch(rng, self.departure_rate, shape)
            return out
        cdf, offset = self._net_cdf()
        u = rng.random(shape)
        counts = np.searchsorted(cdf, u.ravel(), side="right")
        return counts.reshape(shape).astype(np.float64) - offset

    def __repr__(self) -> str:
        return (
            f"PoissonArrivals(rate={self.rate}, "
            f"departure_rate={self.departure_rate})"
        )


class BurstArrivals(ArrivalModel):
    """A burst of tokens lands on one random node every ``period`` rounds."""

    def __init__(self, burst: int, period: int):
        if burst < 0 or period < 1:
            raise ConfigurationError("need burst >= 0 and period >= 1")
        self.burst = int(burst)
        self.period = int(period)

    def deltas(self, topo, round_index, rng):
        out = np.zeros(topo.n)
        if round_index % self.period == 0:
            out[int(rng.integers(0, topo.n))] = float(self.burst)
        return out

    def __repr__(self) -> str:
        return f"BurstArrivals(burst={self.burst}, period={self.period})"


class HotspotArrivals(ArrivalModel):
    """Deterministic arrivals concentrated on fixed hotspot nodes."""

    def __init__(self, nodes: Sequence[int], rate: int):
        if rate < 0:
            raise ConfigurationError("rate must be >= 0")
        self.nodes = [int(v) for v in nodes]
        if not self.nodes:
            raise ConfigurationError("need at least one hotspot node")
        self.rate = int(rate)

    def deltas(self, topo, round_index, rng):
        for v in self.nodes:
            if not 0 <= v < topo.n:
                raise ConfigurationError(f"hotspot {v} out of range")
        out = np.zeros(topo.n)
        out[self.nodes] = float(self.rate)
        return out

    def __repr__(self) -> str:
        return f"HotspotArrivals(nodes={self.nodes}, rate={self.rate})"


class TraceArrivals(ArrivalModel):
    """Replay a recorded per-round delta stream, deterministically.

    ``trace`` is a ``(rounds, n)`` float64 array: row ``r`` is the exact
    per-node delta injected at round ``r``; rounds past the end of the
    trace inject nothing.  The generator argument is ignored entirely —
    replayed deltas are data, not randomness — so a trace reproduces bit
    for bit on every engine and under both stream and batch sampling.
    Record one with :func:`repro.io.save_arrival_trace` (e.g. from a live
    model's sampled deltas) and replay it with ``--arrivals trace:FILE``.
    """

    def __init__(self, trace):
        arr = np.asarray(trace, dtype=np.float64)
        if arr.ndim != 2:
            raise ConfigurationError(
                f"arrival trace must be 2D (rounds, n), got shape {arr.shape}"
            )
        if arr.size and not np.isfinite(arr).all():
            raise ConfigurationError("arrival trace must be finite")
        self.trace = arr

    @classmethod
    def from_file(cls, path: str) -> "TraceArrivals":
        """Load a trace recorded by :func:`repro.io.save_arrival_trace`."""
        from ..io.traces import load_arrival_trace

        model = cls(load_arrival_trace(path))
        model._path = path
        return model

    def deltas(self, topo, round_index, rng):
        if self.trace.size and self.trace.shape[1] != topo.n:
            raise ConfigurationError(
                f"arrival trace is for n={self.trace.shape[1]} nodes, "
                f"topology has n={topo.n}"
            )
        if 0 <= round_index < self.trace.shape[0]:
            return self.trace[round_index].copy()
        return np.zeros(topo.n)

    def batch_deltas(self, topo, round_index, rng, n_replicas):
        # Every replica replays the same recorded row; no stream is
        # consumed, so batch sampling equals stream sampling exactly.
        row = self.deltas(topo, round_index, rng)
        return np.repeat(row[:, None], n_replicas, axis=1)

    def __repr__(self) -> str:
        path = getattr(self, "_path", None)
        src = f"path={path!r}" if path else f"rounds={self.trace.shape[0]}"
        return f"TraceArrivals({src}, n={self.trace.shape[1] if self.trace.ndim == 2 else 0})"


class ScaledArrivals(ArrivalModel):
    """Wrap a model, scaling its sampled deltas by a fixed factor.

    The per-replica engine backends use this to honour
    ``replica_params.arrival_scales``: the base model consumes exactly the
    stream the unscaled replica would, then the sampled deltas are
    multiplied by the scale — the same elementwise float64 product the
    batched engine applies to its whole ``(n, B)`` delta plane, so scaled
    runs stay bit-identical across engines.  Scaled deltas are generally
    fractional; the clamp kernel never assumed integrality, and the token
    accounting stays exact to conservation tolerance.
    """

    def __init__(self, base: Union[str, "ArrivalModel"], scale: float):
        self.base = make_arrival_model(base)
        scale = float(scale)
        if not (np.isfinite(scale) and scale >= 0.0):
            raise ConfigurationError(
                f"arrival scale must be finite and >= 0, got {scale}"
            )
        self.scale = scale

    def deltas(self, topo, round_index, rng):
        return (
            np.asarray(
                self.base.deltas(topo, round_index, rng), dtype=np.float64
            )
            * self.scale
        )

    def batch_deltas(self, topo, round_index, rng, n_replicas):
        return (
            self.base.batch_deltas(topo, round_index, rng, n_replicas)
            * self.scale
        )

    def __repr__(self) -> str:
        return f"ScaledArrivals({self.base!r}, scale={self.scale})"


def make_arrival_model(spec: Union[str, ArrivalModel]) -> ArrivalModel:
    """Build an :class:`ArrivalModel` from a CLI-style spec string.

    Accepted forms (an :class:`ArrivalModel` instance passes through):

    * ``none`` — :class:`NoArrivals`,
    * ``poisson:RATE`` or ``poisson:RATE,depart=RATE`` —
      :class:`PoissonArrivals`,
    * ``burst:BURST/PERIOD`` — :class:`BurstArrivals`
      (e.g. ``burst:200/50``),
    * ``hotspot:N0,N1,...:RATE`` — :class:`HotspotArrivals`
      (e.g. ``hotspot:0,1:5``),
    * ``trace:FILE`` — :class:`TraceArrivals` replaying a recorded
      delta stream saved by :func:`repro.io.save_arrival_trace`.
    """
    if isinstance(spec, ArrivalModel):
        return spec
    if not isinstance(spec, str):
        raise ConfigurationError(
            f"cannot interpret arrival spec {spec!r}; pass an ArrivalModel "
            "or a spec string (none | poisson:... | burst:... | hotspot:...)"
        )
    key, _, rest = spec.strip().partition(":")
    key = key.strip().lower()
    try:
        if key == "none":
            return NoArrivals()
        if key == "poisson":
            parts = [p.strip() for p in rest.split(",") if p.strip()]
            if not parts:
                raise ConfigurationError("poisson spec needs a rate")
            depart = 0.0
            for extra in parts[1:]:
                name, eq, value = extra.partition("=")
                if name.strip() != "depart" or not eq:
                    raise ConfigurationError(
                        f"unknown poisson option {extra!r} (only depart=RATE)"
                    )
                depart = float(value)
            return PoissonArrivals(rate=float(parts[0]), departure_rate=depart)
        if key == "burst":
            burst, sep, period = rest.partition("/")
            if not sep:
                raise ConfigurationError("burst spec is burst:BURST/PERIOD")
            return BurstArrivals(burst=int(burst), period=int(period))
        if key == "hotspot":
            nodes_part, sep, rate = rest.rpartition(":")
            if not sep:
                raise ConfigurationError("hotspot spec is hotspot:N0,N1,...:RATE")
            nodes = [int(v) for v in nodes_part.split(",") if v.strip() != ""]
            return HotspotArrivals(nodes=nodes, rate=int(rate))
        if key == "trace":
            if not rest.strip():
                raise ConfigurationError("trace spec is trace:FILE")
            return TraceArrivals.from_file(rest.strip())
    except ValueError as exc:  # int()/float() parse failures
        raise ConfigurationError(f"bad arrival spec {spec!r}: {exc}") from None
    raise ConfigurationError(
        f"unknown arrival spec {spec!r}; "
        "known: none, poisson:RATE[,depart=RATE], burst:BURST/PERIOD, "
        "hotspot:N0,N1,...:RATE, trace:FILE"
    )


def arrival_stream(seed: int, replica: int = 0) -> np.random.Generator:
    """The arrival generator of batch replica ``replica`` under ``seed``.

    This is the engine-wide RNG stream layout for dynamic workloads:
    ``default_rng(SeedSequence(seed, spawn_key=(replica,)))`` — the same
    child stream ``SeedSequence(seed).spawn(B)[replica]`` would produce, so
    replica streams are statistically independent of each other *and* of the
    plain ``default_rng(seed + b)`` rounding streams, and replica ``b``'s
    arrivals do not depend on the batch size it runs in.
    """
    return np.random.default_rng(
        np.random.SeedSequence(int(seed), spawn_key=(int(replica),))
    )


def arrival_streams(
    seed: int, replicas: Union[int, Sequence[int]]
) -> List[np.random.Generator]:
    """Arrival generators for a whole batch (count, or explicit stream keys)."""
    if isinstance(replicas, (int, np.integer)):
        replicas = range(int(replicas))
    return [arrival_stream(seed, b) for b in replicas]


def batch_arrival_stream(seed: int) -> np.random.Generator:
    """The single shared generator of ``arrival_sampling="batch"`` runs.

    Keyed by a two-element spawn key so it can never collide with any
    per-replica :func:`arrival_stream` (those use one-element keys), whatever
    ``arrival_seeds`` values a sweep pins.
    """
    return np.random.default_rng(
        np.random.SeedSequence(int(seed), spawn_key=(0, 0))
    )


@dataclass(frozen=True)
class DynamicRoundRecord:
    """Per-round metrics of a dynamic run (targets move with the total)."""

    round_index: int
    total_load: float
    arrived: float
    departed: float
    max_minus_avg: float
    max_local_diff: float
    potential_per_node: float
    #: Requested departure volume that was refused because the node had no
    #: non-negative load left to consume (keeps totals exactly accountable).
    clamped: float = 0.0


@dataclass
class DynamicResult:
    """Outcome of a dynamic simulation, backed by columnar storage."""

    table: DynamicRecordTable
    final_state: LoadState
    _records: Optional[List[DynamicRoundRecord]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def records(self) -> List[DynamicRoundRecord]:
        """Recorded rounds as :class:`DynamicRoundRecord` (lazily built)."""
        if self._records is None:
            self._records = [
                DynamicRoundRecord(**row) for row in self.table.iter_rows()
            ]
        return self._records

    def series(self, fieldname: str) -> np.ndarray:
        """Column ``fieldname`` as a read-only zero-copy view."""
        return self.table.column(fieldname)

    def steady_state_imbalance(self, tail_fraction: float = 0.5) -> float:
        """Mean max-above-average over the trailing part of the run."""
        if not 0.0 < tail_fraction <= 1.0:
            raise ConfigurationError(
                f"tail_fraction must be in (0, 1], got {tail_fraction}"
            )
        series = self.series("max_minus_avg")
        start = int(series.size * (1.0 - tail_fraction))
        return float(series[start:].mean())


@dataclass
class DynamicRun:
    """Mutable in-flight state of one dynamic simulation."""

    state: LoadState
    table: DynamicRecordTable
    #: Token accounting of the arrivals applied for the upcoming round.
    pending_arrived: float = 0.0
    pending_departed: float = 0.0
    pending_clamped: float = 0.0
    #: Whether :meth:`DynamicSimulator.inject` already ran this round.
    injected: bool = False
    # Final values of the last executed balancing step (engine adapters
    # report these through the protocol-level StepBatch).
    last_min_transient: float = 0.0
    last_traffic: float = 0.0


class DynamicSimulator:
    """Interleaves token arrivals with balancing rounds.

    Each round: (1) the arrival model's deltas are applied (departures are
    clamped at zero so loads never go negative through consumption), (2) one
    balancing step runs, (3) metrics are recorded against the *current*
    average — the natural target when the total changes over time.
    """

    def __init__(
        self,
        process: LoadBalancingProcess,
        arrivals: Union[str, ArrivalModel],
        rng: Optional[np.random.Generator] = None,
    ):
        self.process = process
        self.arrivals = make_arrival_model(arrivals)
        self.rng = rng or np.random.default_rng()

    # ------------------------------------------------------------------
    # Incremental core (the reference engine's arrival hook drives this)
    # ------------------------------------------------------------------
    def start(self, initial_load: np.ndarray, rounds_hint: int = 0) -> DynamicRun:
        """Initialise a run; unlike the static core, round 0 is not recorded."""
        state = self.process.initial_state(initial_load)
        return DynamicRun(
            state=state,
            table=DynamicRecordTable(max(int(rounds_hint), 1) + 1),
            last_min_transient=float(state.load.min()),
        )

    def inject(self, run: DynamicRun) -> tuple:
        """Apply this round's arrivals; returns ``(arrived, departed, clamped)``.

        Consumption is clamped at the (non-negative part of the) current
        load — SOS can leave transiently negative loads, which departures
        must not touch — and the clamped remainder is reported so callers
        can account for every token.
        """
        if run.injected:
            raise SimulationError(
                f"arrivals already applied for round {run.state.round_index}"
            )
        deltas = np.asarray(
            self.arrivals.deltas(
                self.process.topo, run.state.round_index, self.rng
            ),
            dtype=np.float64,
        )
        positive = np.maximum(deltas, 0.0)
        wanted_departures = np.maximum(-deltas, 0.0)
        actual_departures = np.minimum(
            wanted_departures, np.maximum(run.state.load, 0.0)
        )
        run.state = LoadState(
            load=run.state.load + positive - actual_departures,
            flows=run.state.flows,
            round_index=run.state.round_index,
        )
        run.pending_arrived = float(positive.sum())
        run.pending_departed = float(actual_departures.sum())
        run.pending_clamped = float((wanted_departures - actual_departures).sum())
        run.injected = True
        return run.pending_arrived, run.pending_departed, run.pending_clamped

    def advance(self, run: DynamicRun) -> None:
        """One balancing round (injecting first if the hook wasn't called)."""
        if not run.injected:
            self.inject(run)
        state, info = self.process.step(run.state)
        run.state = state
        run.last_min_transient = info.min_transient
        run.last_traffic = float(np.abs(info.actual).sum())
        run.table.append(
            round_index=state.round_index,
            total_load=state.total_load,
            arrived=run.pending_arrived,
            departed=run.pending_departed,
            clamped=run.pending_clamped,
            max_minus_avg=max_minus_average(state.load),
            max_local_diff=max_local_difference(self.process.topo, state.load),
            potential_per_node=normalized_potential(state.load),
        )
        run.injected = False

    def finish(self, run: DynamicRun) -> DynamicResult:
        """Seal a run into a :class:`DynamicResult`."""
        return DynamicResult(table=run.table, final_state=run.state)

    # ------------------------------------------------------------------
    def run(self, initial_load: np.ndarray, rounds: int) -> DynamicResult:
        """Run ``rounds`` arrival+balance rounds from ``initial_load``."""
        if rounds < 0:
            raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
        run = self.start(initial_load, rounds_hint=rounds)
        for _ in range(rounds):
            self.advance(run)
        return self.finish(run)
