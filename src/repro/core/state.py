"""Simulation state and edge-flow primitives.

A load balancing process is fully described by the per-node load vector and
the per-edge flow of the previous round (SOS needs it; FOS ignores it).
Flows are stored *oriented*: entry ``k`` is the amount moved from
``edge_u[k]`` to ``edge_v[k]`` (negative means the opposite direction), which
makes the antisymmetry ``y_ij = -y_ji`` of the paper automatic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError
from ..graphs.topology import Topology

__all__ = [
    "LoadState",
    "apply_flows",
    "outgoing_per_node",
    "incoming_per_node",
    "transient_loads",
    "point_load",
    "uniform_load",
    "random_load",
    "proportional_load",
]


@dataclass(frozen=True)
class LoadState:
    """Immutable snapshot of a balancing process.

    Attributes
    ----------
    load:
        Per-node load vector ``x(t)`` (float64; integral values for discrete
        processes).
    flows:
        Per-edge flow ``y(t-1)`` sent in the previous round, oriented
        ``edge_u -> edge_v``.  All zeros before the first round.
    round_index:
        Number of completed rounds ``t``.
    """

    load: np.ndarray
    flows: np.ndarray
    round_index: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "load", np.asarray(self.load, dtype=np.float64))
        object.__setattr__(self, "flows", np.asarray(self.flows, dtype=np.float64))

    @classmethod
    def initial(cls, topo: Topology, load: np.ndarray) -> "LoadState":
        """Round-zero state with no flow history."""
        load = np.asarray(load, dtype=np.float64)
        if load.shape != (topo.n,):
            raise ConfigurationError(
                f"load vector has shape {load.shape}, expected ({topo.n},)"
            )
        return cls(load=load.copy(), flows=np.zeros(topo.m_edges), round_index=0)

    @property
    def total_load(self) -> float:
        """Total load in the system (conserved by every scheme)."""
        return float(self.load.sum())

    def advanced(self, load: np.ndarray, flows: np.ndarray) -> "LoadState":
        """The state after one more round with the given new load and flows."""
        return replace(self, load=load, flows=flows, round_index=self.round_index + 1)


# ----------------------------------------------------------------------
# Edge-flow primitives
# ----------------------------------------------------------------------

def apply_flows(topo: Topology, load: np.ndarray, flows: np.ndarray) -> np.ndarray:
    """New load vector after moving ``flows`` (oriented ``u -> v``)."""
    out_u = np.bincount(topo.edge_u, weights=flows, minlength=topo.n)
    in_v = np.bincount(topo.edge_v, weights=flows, minlength=topo.n)
    return load - out_u + in_v


def outgoing_per_node(topo: Topology, flows: np.ndarray) -> np.ndarray:
    """Total load each node *sends* under the oriented flow vector."""
    pos = np.maximum(flows, 0.0)
    neg = np.maximum(-flows, 0.0)
    return (
        np.bincount(topo.edge_u, weights=pos, minlength=topo.n)
        + np.bincount(topo.edge_v, weights=neg, minlength=topo.n)
    )


def incoming_per_node(topo: Topology, flows: np.ndarray) -> np.ndarray:
    """Total load each node *receives* under the oriented flow vector."""
    pos = np.maximum(flows, 0.0)
    neg = np.maximum(-flows, 0.0)
    return (
        np.bincount(topo.edge_v, weights=pos, minlength=topo.n)
        + np.bincount(topo.edge_u, weights=neg, minlength=topo.n)
    )


def transient_loads(topo: Topology, load: np.ndarray, flows: np.ndarray) -> np.ndarray:
    """The transient state ``x̆(t)``: load after sending, before receiving.

    Section V of the paper splits each round into a send step and a receive
    step; negative transient load means a node shipped more than it had.
    """
    return load - outgoing_per_node(topo, flows)


# ----------------------------------------------------------------------
# Initial load vectors
# ----------------------------------------------------------------------

def point_load(topo: Topology, total: float, node: int = 0) -> np.ndarray:
    """All ``total`` load on a single node — the paper's default start.

    Section VI: *"we initialize our system by assigning a load of 1000·n to a
    fixed node v0 ... the load of all other nodes is set to zero."*
    """
    if not 0 <= node < topo.n:
        raise ConfigurationError(f"node {node} out of range for n={topo.n}")
    if total < 0:
        raise ConfigurationError(f"total load must be >= 0, got {total}")
    load = np.zeros(topo.n, dtype=np.float64)
    load[node] = float(total)
    return load


def uniform_load(topo: Topology, per_node: float) -> np.ndarray:
    """Every node holds ``per_node`` load (already balanced when speeds=1)."""
    if per_node < 0:
        raise ConfigurationError(f"per-node load must be >= 0, got {per_node}")
    return np.full(topo.n, float(per_node), dtype=np.float64)


def random_load(
    topo: Topology,
    total: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """``total`` integral tokens placed on nodes uniformly at random."""
    if total < 0:
        raise ConfigurationError(f"total load must be >= 0, got {total}")
    rng = rng or np.random.default_rng()
    owners = rng.integers(0, topo.n, size=int(total))
    return np.bincount(owners, minlength=topo.n).astype(np.float64)


def proportional_load(topo: Topology, speeds: np.ndarray, per_unit: float) -> np.ndarray:
    """The balanced target ``x̄_i = per_unit * s_i`` (useful as a baseline)."""
    speeds = np.asarray(speeds, dtype=np.float64)
    if speeds.shape != (topo.n,):
        raise ConfigurationError(
            f"speed vector has shape {speeds.shape}, expected ({topo.n},)"
        )
    return per_unit * speeds
