"""Edge weight (``alpha``) strategies for diffusion matrices.

The continuous schemes move ``y_ij = alpha_ij * (x_i/s_i - x_j/s_j)`` load
over edge ``{i, j}`` per round, so the per-edge parameters ``alpha_ij``
determine the diffusion matrix ``M = I - L_alpha S^{-1}``.  The paper's
default is ``alpha_ij = 1/(max(d_i, d_j) + 1)`` (homogeneous networks);
Observation 3 additionally considers the uniform choice ``alpha = 1/(gamma d)``.

For heterogeneous networks the alphas must shrink with the speeds so that the
diagonal of ``M`` stays non-negative (``sum_j alpha_ij <= s_i``); the
``heterogeneous_safe`` strategy scales the paper default by ``min(s_i, s_j)``
which keeps ``M`` column-stochastic with non-negative entries for every speed
vector (see :func:`repro.core.matrices.check_diffusion_matrix`).

All strategies return one ``float64`` value per edge, aligned with
``Topology.edge_u``/``edge_v``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..graphs.topology import Topology

__all__ = [
    "max_degree_plus_one",
    "uniform_alpha",
    "lazy_metropolis",
    "heterogeneous_safe",
    "constant_alpha",
    "resolve_alphas",
    "ALPHA_STRATEGIES",
]


def max_degree_plus_one(topo: Topology, speeds: Optional[np.ndarray] = None) -> np.ndarray:
    """The paper's default: ``alpha_ij = 1 / (max(d_i, d_j) + 1)``.

    In the heterogeneous case this is only safe when combined with speeds via
    :func:`heterogeneous_safe`; on homogeneous networks it yields the doubly
    stochastic diffusion matrix of equation (1).
    """
    du = topo.degrees[topo.edge_u]
    dv = topo.degrees[topo.edge_v]
    return 1.0 / (np.maximum(du, dv) + 1.0)


def uniform_alpha(topo: Topology, gamma: float = 1.0,
                  speeds: Optional[np.ndarray] = None) -> np.ndarray:
    """Uniform ``alpha = 1/(gamma * d)`` with ``d`` the maximum degree.

    This is the setting of Observation 3 in the paper; ``gamma > 1`` keeps a
    lazy self-loop weight at every node (``gamma = 1`` makes regular bipartite
    graphs periodic).
    """
    if gamma < 1.0:
        raise ConfigurationError(f"gamma must be >= 1, got {gamma}")
    d = topo.max_degree
    if d == 0:
        raise ConfigurationError("graph has no edges; alphas are undefined")
    return np.full(topo.m_edges, 1.0 / (gamma * d), dtype=np.float64)


def lazy_metropolis(topo: Topology, speeds: Optional[np.ndarray] = None) -> np.ndarray:
    """Metropolis weights with a floor of laziness: ``1 / (2 max(d_i, d_j))``.

    A common alternative in the diffusion literature; slower than the paper
    default by roughly a factor 2 on regular graphs, used in the alpha
    ablation bench.
    """
    du = topo.degrees[topo.edge_u]
    dv = topo.degrees[topo.edge_v]
    return 1.0 / (2.0 * np.maximum(du, dv))


def heterogeneous_safe(topo: Topology, speeds: np.ndarray) -> np.ndarray:
    """Speed-scaled default: ``alpha_ij = min(s_i, s_j) / (max(d_i, d_j) + 1)``.

    Guarantees ``sum_{j in N(i)} alpha_ij < s_i`` for every node, hence the
    heterogeneous diffusion matrix ``M = I - L_alpha S^{-1}`` has a strictly
    positive diagonal, non-negative entries and unit column sums — the
    properties the paper's heterogeneous analysis (Section II-c) requires.
    Reduces to :func:`max_degree_plus_one` when all speeds are 1.
    """
    speeds = np.asarray(speeds, dtype=np.float64)
    if speeds.size != topo.n:
        raise ConfigurationError(
            f"speed vector length {speeds.size} does not match n={topo.n}"
        )
    su = speeds[topo.edge_u]
    sv = speeds[topo.edge_v]
    du = topo.degrees[topo.edge_u]
    dv = topo.degrees[topo.edge_v]
    return np.minimum(su, sv) / (np.maximum(du, dv) + 1.0)


def constant_alpha(value: float) -> Callable[..., np.ndarray]:
    """Factory for a fixed ``alpha`` on every edge (use with care)."""
    if value <= 0:
        raise ConfigurationError(f"alpha must be positive, got {value}")

    def strategy(topo: Topology, speeds: Optional[np.ndarray] = None) -> np.ndarray:
        return np.full(topo.m_edges, float(value), dtype=np.float64)

    strategy.__name__ = f"constant_alpha_{value}"
    return strategy


ALPHA_STRATEGIES: Dict[str, Callable[..., np.ndarray]] = {
    "max-degree-plus-one": max_degree_plus_one,
    "uniform": uniform_alpha,
    "lazy-metropolis": lazy_metropolis,
    "heterogeneous-safe": heterogeneous_safe,
}


def resolve_alphas(
    alphas,
    topo: Topology,
    speeds: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Normalise the many ways callers may specify alphas to an edge array.

    ``alphas`` may be ``None`` (pick the paper default appropriate for the
    speed vector), a strategy name from :data:`ALPHA_STRATEGIES`, a callable
    ``(topo, speeds) -> array``, a scalar, or an explicit per-edge array.
    """
    if alphas is None:
        if speeds is None or np.allclose(speeds, 1.0):
            return max_degree_plus_one(topo)
        return heterogeneous_safe(topo, speeds)
    if isinstance(alphas, str):
        try:
            strategy = ALPHA_STRATEGIES[alphas]
        except KeyError:
            raise ConfigurationError(
                f"unknown alpha strategy {alphas!r}; "
                f"known: {sorted(ALPHA_STRATEGIES)}"
            ) from None
        if strategy is heterogeneous_safe:
            if speeds is None:
                raise ConfigurationError("heterogeneous-safe alphas need speeds")
            return strategy(topo, speeds)
        return strategy(topo, speeds=speeds)
    if callable(alphas):
        return np.asarray(alphas(topo, speeds), dtype=np.float64)
    arr = np.asarray(alphas, dtype=np.float64)
    if arr.ndim == 0:
        arr = np.full(topo.m_edges, float(arr), dtype=np.float64)
    if arr.shape != (topo.m_edges,):
        raise ConfigurationError(
            f"alpha array has shape {arr.shape}, expected ({topo.m_edges},)"
        )
    if np.any(arr <= 0) or not np.all(np.isfinite(arr)):
        raise ConfigurationError("alphas must be positive and finite")
    return arr
