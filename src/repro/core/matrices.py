"""Diffusion matrix construction and validation.

The continuous first-order scheme is ``x(t+1) = M x(t)``.  In the
heterogeneous model (Section II-c of the paper) ``M = I - L_alpha S^{-1}``
where ``L_alpha`` is the alpha-weighted Laplacian and ``S = diag(s)``; entry
by entry this is

* ``M_ij = alpha_ij / s_j`` for edges ``{i, j}``,
* ``M_ii = 1 - (sum_{j in N(i)} alpha_ij) / s_i``,

which gives unit column sums (load conservation), ``M s = s`` (the speed
vector is stationary) and, for valid alphas, non-negative entries.  With unit
speeds ``M`` is the symmetric doubly stochastic matrix of equation (2).

Dense matrices are fine up to a few thousand nodes; the simulation engines
never materialise ``M`` (they work edge-wise), so these helpers exist for
spectral analysis and for the theory-validation test-suite.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..exceptions import ConfigurationError
from ..graphs.speeds import uniform_speeds, validate_speeds
from ..graphs.topology import Topology
from .alphas import resolve_alphas

__all__ = [
    "diffusion_matrix",
    "diffusion_matrix_sparse",
    "symmetrized_matrix",
    "weighted_laplacian",
    "check_diffusion_matrix",
]


def weighted_laplacian(topo: Topology, alphas: np.ndarray) -> np.ndarray:
    """Dense alpha-weighted Laplacian ``L_alpha`` (symmetric, zero row sums)."""
    if alphas.shape != (topo.m_edges,):
        raise ConfigurationError(
            f"alpha array has shape {alphas.shape}, expected ({topo.m_edges},)"
        )
    lap = np.zeros((topo.n, topo.n), dtype=np.float64)
    u, v = topo.edge_u, topo.edge_v
    lap[u, v] = -alphas
    lap[v, u] = -alphas
    diag = np.zeros(topo.n, dtype=np.float64)
    np.add.at(diag, u, alphas)
    np.add.at(diag, v, alphas)
    lap[np.arange(topo.n), np.arange(topo.n)] = diag
    return lap


def diffusion_matrix(
    topo: Topology,
    speeds: Optional[np.ndarray] = None,
    alphas=None,
) -> np.ndarray:
    """Dense diffusion matrix ``M = I - L_alpha S^{-1}``.

    Parameters
    ----------
    topo:
        The network.
    speeds:
        Heterogeneous speed vector (defaults to all ones — the homogeneous
        model of equation (2)).
    alphas:
        Anything accepted by :func:`repro.core.alphas.resolve_alphas`.
    """
    speeds = validate_speeds(speeds if speeds is not None else uniform_speeds(topo.n), topo.n)
    alpha_arr = resolve_alphas(alphas, topo, speeds)
    lap = weighted_laplacian(topo, alpha_arr)
    m = -lap / speeds[np.newaxis, :]
    m[np.arange(topo.n), np.arange(topo.n)] += 1.0
    return m


def diffusion_matrix_sparse(
    topo: Topology,
    speeds: Optional[np.ndarray] = None,
    alphas=None,
) -> sp.csr_matrix:
    """Sparse CSR version of :func:`diffusion_matrix` for large graphs."""
    speeds = validate_speeds(speeds if speeds is not None else uniform_speeds(topo.n), topo.n)
    alpha_arr = resolve_alphas(alphas, topo, speeds)
    u, v = topo.edge_u, topo.edge_v
    diag_load = np.zeros(topo.n, dtype=np.float64)
    np.add.at(diag_load, u, alpha_arr)
    np.add.at(diag_load, v, alpha_arr)
    rows = np.concatenate([u, v, np.arange(topo.n)])
    cols = np.concatenate([v, u, np.arange(topo.n)])
    vals = np.concatenate(
        [
            alpha_arr / speeds[v],
            alpha_arr / speeds[u],
            1.0 - diag_load / speeds,
        ]
    )
    return sp.csr_matrix((vals, (rows, cols)), shape=(topo.n, topo.n))


def symmetrized_matrix(
    topo: Topology,
    speeds: Optional[np.ndarray] = None,
    alphas=None,
    sparse: bool = False,
):
    """The symmetric similarity transform ``S^{-1/2} M S^{1/2}``.

    ``M = I - L S^{-1}`` is generally not symmetric, but
    ``S^{-1/2} M S^{1/2} = I - S^{-1/2} L S^{-1/2}`` is, shares all
    eigenvalues with ``M``, and can be handed to symmetric eigensolvers.
    Returns ``(A_sym, sqrt_speeds)``.
    """
    speeds = validate_speeds(speeds if speeds is not None else uniform_speeds(topo.n), topo.n)
    sqrt_s = np.sqrt(speeds)
    if sparse:
        m = diffusion_matrix_sparse(topo, speeds, alphas)
        d_inv = sp.diags(1.0 / sqrt_s)
        d = sp.diags(sqrt_s)
        sym = d_inv @ m @ d
        sym = (sym + sym.T) * 0.5  # kill round-off asymmetry
        return sym.tocsr(), sqrt_s
    m = diffusion_matrix(topo, speeds, alphas)
    sym = m * (sqrt_s[np.newaxis, :] / sqrt_s[:, np.newaxis])
    sym = (sym + sym.T) * 0.5
    return sym, sqrt_s


def check_diffusion_matrix(
    m: np.ndarray,
    speeds: Optional[np.ndarray] = None,
    atol: float = 1e-10,
) -> Tuple[bool, str]:
    """Validate the structural properties the paper's analysis relies on.

    Checks: unit column sums (load conservation), non-negative entries,
    ``M s = s`` (the speed vector is a fixed point), and — when the speeds
    are uniform — symmetry (equation (2) requires a symmetric doubly
    stochastic matrix).  Returns ``(ok, message)``.
    """
    n = m.shape[0]
    if m.shape != (n, n):
        return False, f"matrix is not square: {m.shape}"
    speeds = np.ones(n) if speeds is None else np.asarray(speeds, dtype=np.float64)
    col_sums = m.sum(axis=0)
    if not np.allclose(col_sums, 1.0, atol=atol):
        worst = float(np.abs(col_sums - 1.0).max())
        return False, f"column sums deviate from 1 by up to {worst:.3e}"
    if m.min() < -atol:
        return False, f"negative entry {m.min():.3e}"
    if not np.allclose(m @ speeds, speeds, atol=atol * max(1.0, float(speeds.max()))):
        return False, "speed vector is not a fixed point of M"
    if np.allclose(speeds, speeds[0]) and not np.allclose(m, m.T, atol=atol):
        return False, "homogeneous M must be symmetric"
    return True, "ok"
