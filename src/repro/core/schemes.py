"""Continuous diffusion schemes: FOS and SOS.

A *scheme* maps the current state to the continuous scheduled flow over every
edge (the ``Yhat`` of Section III-B).  Both schemes are linear in the sense
of Definitions 2 and 4 of the paper — the test-suite checks this property
directly — which is what makes the error-propagation identity (Lemma 2) hold
for their discretised versions.

Flows follow the heterogeneous equations (Sections II-c and V):

* FOS:  ``y_ij(t) = alpha_ij * (x_i(t)/s_i - x_j(t)/s_j)``
* SOS:  ``y_ij(t) = (beta - 1) y_ij(t-1)
  + beta * alpha_ij * (x_i(t)/s_i - x_j(t)/s_j)`` with an FOS first round.

With unit speeds these reduce to equations (1) and (3) of the paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import SchemeError
from ..graphs.speeds import uniform_speeds, validate_speeds
from ..graphs.topology import Topology
from .alphas import resolve_alphas
from .state import LoadState

__all__ = ["ContinuousScheme", "FirstOrderScheme", "SecondOrderScheme"]


class ContinuousScheme:
    """Base class binding a diffusion scheme to a topology.

    Parameters
    ----------
    topo:
        The network.
    speeds:
        Heterogeneous speeds (default: homogeneous, all ones).
    alphas:
        Edge weights; anything :func:`repro.core.alphas.resolve_alphas`
        accepts.  ``None`` picks the paper default for the speed vector.
    """

    #: Whether :meth:`scheduled_flows` reads ``state.flows`` (SOS does).
    uses_flow_history: bool = False

    def __init__(self, topo: Topology, speeds: Optional[np.ndarray] = None, alphas=None):
        self.topo = topo
        self.speeds = validate_speeds(
            speeds if speeds is not None else uniform_speeds(topo.n), topo.n
        )
        self.alphas = resolve_alphas(alphas, topo, self.speeds)
        # Per-edge endpoint speeds, gathered once.  The kernel *divides* by
        # these (rather than multiplying by precomputed reciprocals) so the
        # flows are bit-identical to what message-passing nodes compute
        # locally with ``load / speed`` — keeping the two engines in lockstep
        # even for roundings that are sensitive to the last ulp.
        self._s_u = self.speeds[topo.edge_u]
        self._s_v = self.speeds[topo.edge_v]

    # -- subclass API ---------------------------------------------------
    def scheduled_flows(self, state: LoadState) -> np.ndarray:
        """Continuous flow ``Yhat`` for the next round, oriented ``u -> v``."""
        raise NotImplementedError

    # -- helpers ---------------------------------------------------------
    def _gradient_flows(self, load: np.ndarray) -> np.ndarray:
        """The first-order term ``alpha_ij (x_i/s_i - x_j/s_j)`` per edge."""
        return self.alphas * (
            load[self.topo.edge_u] / self._s_u
            - load[self.topo.edge_v] / self._s_v
        )

    @property
    def name(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return f"{type(self).__name__}(topo={self.topo.name!r}, n={self.topo.n})"


class FirstOrderScheme(ContinuousScheme):
    """First order scheme (FOS), equation (1) of the paper.

    The flow over an edge depends only on the current (speed-normalised) load
    difference of its endpoints; in matrix form ``x(t+1) = M x(t)`` with
    ``M = I - L_alpha S^{-1}``.
    """

    uses_flow_history = False

    def scheduled_flows(self, state: LoadState) -> np.ndarray:
        return self._gradient_flows(state.load)


class SecondOrderScheme(ContinuousScheme):
    """Second order scheme (SOS), equations (3)/(4) of the paper.

    The very first round is an FOS round; afterwards the flow mixes the
    previous round's flow with the current gradient:

        ``y(t) = (beta - 1) y(t-1) + beta * gradient(x(t))``.

    ``beta`` must lie in ``(0, 2)`` for convergence; ``beta = 1`` recovers
    FOS exactly.  Use :func:`repro.core.spectral.beta_opt` for the optimal
    value ``2 / (1 + sqrt(1 - lambda^2))``.
    """

    uses_flow_history = True

    def __init__(
        self,
        topo: Topology,
        beta: float,
        speeds: Optional[np.ndarray] = None,
        alphas=None,
    ):
        if not 0.0 < beta < 2.0:
            raise SchemeError(f"beta must be in (0, 2), got {beta}")
        super().__init__(topo, speeds, alphas)
        self.beta = float(beta)

    def scheduled_flows(self, state: LoadState) -> np.ndarray:
        gradient = self._gradient_flows(state.load)
        if state.round_index == 0:
            return gradient
        return (self.beta - 1.0) * state.flows + self.beta * gradient

    def __repr__(self) -> str:
        return (
            f"SecondOrderScheme(topo={self.topo.name!r}, n={self.topo.n}, "
            f"beta={self.beta:.6f})"
        )
