"""Switch policies for the hybrid SOS -> FOS strategy.

The paper's key empirical proposal (Section VI-A): run the fast second order
scheme until its residual imbalance plateaus, then have every node switch
*synchronously* to the first order scheme, which drives the maximum local
load difference down to ~4 and the maximum excess over the average to ~7 on
the big torus.

A :class:`SwitchPolicy` inspects the state after every round and reports
whether the simulator should swap the second order scheme for its first
order counterpart.  Three policies are provided:

* :class:`FixedRoundSwitch` — switch at a predetermined round (the paper's
  Figures 4, 5, 8 use 2500/3000 and a sweep of values),
* :class:`LocalDifferenceSwitch` — switch once the maximum local load
  difference drops below a threshold; the paper explicitly notes this local
  metric "is also available in a distributed system with only limited global
  knowledge",
* :class:`PotentialPlateauSwitch` — switch once the potential stops
  improving by a relative factor over a sliding window (a global-knowledge
  proxy for the leading-eigenvector criterion of Figure 7).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..exceptions import ConfigurationError
from .metrics import max_local_difference, potential
from .state import LoadState

__all__ = [
    "SwitchPolicy",
    "NeverSwitch",
    "FixedRoundSwitch",
    "LocalDifferenceSwitch",
    "PotentialPlateauSwitch",
]


class SwitchPolicy:
    """Decides when the simulator should swap SOS for FOS."""

    def should_switch(self, topo, state: LoadState) -> bool:
        """Return True to switch; called after every completed round."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear internal state before a fresh run."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NeverSwitch(SwitchPolicy):
    """Run the configured scheme for the whole simulation (the default)."""

    def should_switch(self, topo, state):
        return False


class FixedRoundSwitch(SwitchPolicy):
    """Switch after a fixed number of completed rounds.

    ``FixedRoundSwitch(2500)`` reproduces the early-switch scenario of
    Figure 4 (left); ``FixedRoundSwitch(3000)`` the late one (right).
    """

    def __init__(self, round_index: int):
        if round_index < 0:
            raise ConfigurationError(f"round index must be >= 0, got {round_index}")
        self.round_index = int(round_index)

    def should_switch(self, topo, state):
        return state.round_index >= self.round_index

    def __repr__(self) -> str:
        return f"FixedRoundSwitch({self.round_index})"


class LocalDifferenceSwitch(SwitchPolicy):
    """Switch once ``max local load difference <= threshold``.

    The paper: *"the maximum local load difference seems to be a good
    indicator for switching from SOS to FOS"*.  A ``min_rounds`` guard stops
    the policy from firing during the initial rounds where the point load has
    not spread yet (the very first rounds can have tiny local differences at
    far-away nodes only on pathological starts).
    """

    def __init__(self, threshold: float = 10.0, min_rounds: int = 1):
        if threshold < 0:
            raise ConfigurationError(f"threshold must be >= 0, got {threshold}")
        if min_rounds < 0:
            raise ConfigurationError(f"min_rounds must be >= 0, got {min_rounds}")
        self.threshold = float(threshold)
        self.min_rounds = int(min_rounds)

    def should_switch(self, topo, state):
        if state.round_index < self.min_rounds:
            return False
        return max_local_difference(topo, state.load) <= self.threshold

    def __repr__(self) -> str:
        return (
            f"LocalDifferenceSwitch(threshold={self.threshold}, "
            f"min_rounds={self.min_rounds})"
        )


class PotentialPlateauSwitch(SwitchPolicy):
    """Switch when the potential's relative improvement stalls.

    Tracks ``phi_t`` over a sliding ``window`` of rounds and fires when the
    newest value exceeds ``(1 - min_drop)`` times the oldest — i.e. the
    exponential decay phase has ended.  This approximates "the impact of the
    leading eigenvector drops below some threshold" without eigendata.
    """

    def __init__(self, window: int = 50, min_drop: float = 0.2, min_rounds: int = 10):
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        if not 0.0 < min_drop < 1.0:
            raise ConfigurationError(f"min_drop must be in (0, 1), got {min_drop}")
        self.window = int(window)
        self.min_drop = float(min_drop)
        self.min_rounds = int(min_rounds)
        self._history: deque = deque(maxlen=self.window)

    def reset(self) -> None:
        self._history.clear()

    def should_switch(self, topo, state):
        phi = potential(state.load)
        self._history.append(phi)
        if state.round_index < self.min_rounds or len(self._history) < self.window:
            return False
        oldest = self._history[0]
        if oldest <= 0.0:
            return True
        return phi > (1.0 - self.min_drop) * oldest

    def __repr__(self) -> str:
        return (
            f"PotentialPlateauSwitch(window={self.window}, "
            f"min_drop={self.min_drop}, min_rounds={self.min_rounds})"
        )
