"""Chebyshev semi-iterative acceleration — the scheme SOS descends from.

The paper's SOS is second-order Richardson iteration with a *fixed*
relaxation parameter ``beta`` (reference [18], Golub & Varga).  The full
Chebyshev semi-iterative method uses a *time-varying* parameter

    ``omega_1 = 1``, ``omega_2 = 2 / (2 - lambda^2)``,
    ``omega_{t+1} = 1 / (1 - lambda^2 * omega_t / 4)``,

which (after the initial jump) converges monotonically to the fixed point
``beta_opt = 2 / (1 + sqrt(1 - lambda^2))`` — SOS is exactly the stationary
limit of this scheme.  Chebyshev's transient is optimal among polynomial
acceleration methods, so it reaches a given imbalance no later than SOS;
after a few dozen rounds the two schemes are indistinguishable.

The per-round dynamics share SOS's form (equation (4) of the paper with
``beta -> omega_{t+1}``), so the flow decomposition and the rounding
framework apply unchanged; the scheme is linear per round (time-varying
coefficients), hence the error-propagation identity of Lemma 2 holds with
time-dependent contribution matrices analogous to
:func:`repro.core.matching.matching_contribution_matrices`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..exceptions import SchemeError
from ..graphs.topology import Topology
from .schemes import ContinuousScheme
from .state import LoadState

__all__ = ["ChebyshevScheme", "chebyshev_omegas"]


def chebyshev_omegas(lam: float, t_max: int) -> List[float]:
    """The parameter sequence ``omega_1 .. omega_{t_max}``.

    ``omega_t`` is the factor applied in round ``t-1`` (0-indexed round
    ``r`` uses ``omega_{r+1}``); after the jump from ``omega_1 = 1`` to
    ``omega_2 = 2/(2 - lambda^2)`` the sequence decreases monotonically to
    its fixed point ``beta_opt(lam)``.
    """
    if not 0.0 <= lam < 1.0:
        raise SchemeError(f"lambda must be in [0, 1), got {lam}")
    if t_max < 1:
        raise SchemeError(f"t_max must be >= 1, got {t_max}")
    omegas = [1.0]
    if t_max >= 2:
        omegas.append(2.0 / (2.0 - lam * lam))
    while len(omegas) < t_max:
        omegas.append(1.0 / (1.0 - lam * lam * omegas[-1] / 4.0))
    return omegas


class ChebyshevScheme(ContinuousScheme):
    """Chebyshev semi-iterative diffusion (time-varying SOS).

    Parameters
    ----------
    topo:
        The network.
    lam:
        The second largest eigenvalue of the diffusion matrix in magnitude
        (e.g. from :func:`repro.core.spectral.second_largest_eigenvalue`).
    speeds / alphas:
        As for the other schemes.

    Round ``t`` sends ``y(t) = (omega_{t+1} - 1) y(t-1)
    + omega_{t+1} * alpha_ij (x_i/s_i - x_j/s_j)`` with ``omega_1 = 1``
    (an FOS bootstrap round, like SOS).
    """

    uses_flow_history = True

    def __init__(
        self,
        topo: Topology,
        lam: float,
        speeds: Optional[np.ndarray] = None,
        alphas=None,
    ):
        if not 0.0 <= lam < 1.0:
            raise SchemeError(f"lambda must be in [0, 1), got {lam}")
        super().__init__(topo, speeds, alphas)
        self.lam = float(lam)
        self._omegas = [1.0]

    def omega(self, round_index: int) -> float:
        """``omega_{round_index + 1}`` — the factor used in that round."""
        if round_index < 0:
            raise SchemeError(f"round index must be >= 0, got {round_index}")
        lam2 = self.lam * self.lam
        while len(self._omegas) <= round_index:
            if len(self._omegas) == 1:
                self._omegas.append(2.0 / (2.0 - lam2))
            else:
                self._omegas.append(1.0 / (1.0 - lam2 * self._omegas[-1] / 4.0))
        return self._omegas[round_index]

    def scheduled_flows(self, state: LoadState) -> np.ndarray:
        gradient = self._gradient_flows(state.load)
        if state.round_index == 0:
            return gradient
        omega = self.omega(state.round_index)
        return (omega - 1.0) * state.flows + omega * gradient

    def __repr__(self) -> str:
        return (
            f"ChebyshevScheme(topo={self.topo.name!r}, n={self.topo.n}, "
            f"lambda={self.lam:.6f})"
        )
