"""Rounding schemes turning continuous flows into integral token moves.

Definition 1 of the paper: a discrete process ``D`` is a continuous process
``C`` composed with a rounding function applied to the scheduled flow matrix.
Every scheme here operates on the *oriented* per-edge flow vector (positive
means ``edge_u -> edge_v``), rounds magnitudes on the sending side and keeps
antisymmetry by construction.

Error guarantees: :class:`FloorRounding`, :class:`NearestRounding`,
:class:`CeilRounding` and :class:`UnbiasedEdgeRounding` are floor-or-ceiling
schemes (per-edge error magnitude strictly below 1).
:class:`RandomizedExcessRounding` — the paper's scheme — is *unbiased* with
error below 1 in the under-sending direction, but a node may place several
of its (at most ``ceil(r) <= d``) excess tokens on the same edge, so the
over-sending error on one edge can reach ``ceil(r) - {Yhat}``; this is
exactly the ``Z_ij`` sum of Bernoulli variables in Observation 1 of the
paper.  :class:`IdentityRounding` has error zero (the continuous process).

The centrepiece is :class:`RandomizedExcessRounding` — the paper's Section
III-B algorithm: floor every outgoing flow, gather the fractional surplus
``r`` at each node, then dispatch ``ceil(r)`` *excess tokens*, each of which
independently goes to neighbour ``j`` with probability ``{Yhat_ij}/ceil(r)``
and stays home otherwise.  The implementation is fully vectorised: one
uniform draw per excess token and a single ``searchsorted`` against the
per-sender cumulative fractional parts.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import RoundingError
from ..graphs.topology import Topology

__all__ = [
    "RoundingScheme",
    "IdentityRounding",
    "FloorRounding",
    "NearestRounding",
    "CeilRounding",
    "UnbiasedEdgeRounding",
    "RandomizedExcessRounding",
    "make_rounding",
]

_FRAC_TOL = 1e-9


class RoundingScheme:
    """Base class; subclasses implement :meth:`round_flows`.

    ``needs_rng`` tells the process wrapper whether to thread a random
    generator through; deterministic schemes ignore it.
    """

    needs_rng: bool = False
    #: Identifier used by :func:`make_rounding` and in experiment reports.
    key: str = ""

    def round_flows(
        self,
        topo: Topology,
        flows: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Return an integral flow vector aligned with ``flows``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class IdentityRounding(RoundingScheme):
    """No rounding: the continuous (idealised) process of Figure 6."""

    key = "identity"

    def round_flows(self, topo, flows, rng=None):
        return np.asarray(flows, dtype=np.float64)


class FloorRounding(RoundingScheme):
    """Always round the sent amount down (the "always round down" baseline).

    The sender of each edge rounds the magnitude of the flow down, i.e. the
    oriented flow is truncated toward zero.  Deterministic, never creates
    negative load beyond what the continuous flow would, but biased: the
    expected rounding error is positive and the residual imbalance is
    typically the worst of all schemes.
    """

    key = "floor"

    def round_flows(self, topo, flows, rng=None):
        return np.trunc(flows)


class NearestRounding(RoundingScheme):
    """Round the sent magnitude to the nearest integer (ties toward even).

    A deterministic floor-or-ceiling scheme in the sense of Theorem 8.
    """

    key = "nearest"

    def round_flows(self, topo, flows, rng=None):
        return np.sign(flows) * np.rint(np.abs(flows))


class CeilRounding(RoundingScheme):
    """Always round the sent magnitude up.

    The adversarial extreme of the floor-or-ceiling class of Theorem 8;
    maximises traffic and the risk of negative load.  Mainly used by the
    negative-load experiments and tests.
    """

    key = "ceil"

    def round_flows(self, topo, flows, rng=None):
        return np.sign(flows) * np.ceil(np.abs(flows))


class UnbiasedEdgeRounding(RoundingScheme):
    """Independent per-edge randomized rounding (the scheme of [15]).

    Each edge independently rounds the sent magnitude up with probability
    equal to its fractional part, so the rounding error is zero in
    expectation per edge.  Unlike the paper's excess-token scheme the number
    of extra tokens a node emits is not capped, which is exactly the negative
    load drawback the paper describes for this approach.
    """

    key = "unbiased-edge"
    needs_rng = True

    def round_flows(self, topo, flows, rng=None):
        rng = rng or np.random.default_rng()
        magnitude = np.abs(flows)
        base = np.floor(magnitude)
        frac = magnitude - base
        up = rng.random(flows.shape[0]) < frac
        return np.sign(flows) * (base + up)


class RandomizedExcessRounding(RoundingScheme):
    """The paper's randomized rounding algorithm (Section III-B).

    For each node ``i`` consider the edges whose scheduled flow leaves ``i``.
    Floor every such flow; let ``r = sum of the fractional parts`` and
    ``c = ceil(r)``.  Dispatch ``c`` excess tokens: each token independently
    goes to neighbour ``j`` with probability ``{Yhat_ij}/c`` and stays on
    ``i`` with the remaining probability ``1 - r/c``.  (This matches
    Observation 1: ``Z_ij`` is a sum of ``c`` Bernoulli variables with mean
    ``{Yhat_ij}/c`` each, so ``E[Z_ij] = {Yhat_ij}``.)

    Vectorised implementation: tokens of all senders are drawn in one batch.
    For sender ``i`` with token budget ``c_i``, a token's uniform draw is
    scaled to ``[0, c_i)`` and located in the sender's cumulative-fraction
    segment via a single global ``searchsorted``; draws landing beyond the
    segment's total fraction ``r_i`` stay home.
    """

    key = "randomized-excess"
    needs_rng = True

    def round_flows(self, topo, flows, rng=None):
        rng = rng or np.random.default_rng()
        flows = np.asarray(flows, dtype=np.float64)
        magnitude = np.abs(flows)
        base = np.floor(magnitude)
        frac = magnitude - base
        # Clean up float fuzz: treat ~integral flows as exact.
        fuzzy = frac < _FRAC_TOL
        frac[fuzzy] = 0.0
        high = frac > 1.0 - _FRAC_TOL
        base[high] += 1.0
        frac[high] = 0.0

        rounded = np.sign(flows) * base

        fractional = np.nonzero(frac > 0.0)[0]
        if fractional.size == 0:
            return rounded

        # Sender of each fractional edge: edge_u when flow > 0 else edge_v.
        senders = np.where(
            flows[fractional] > 0.0,
            topo.edge_u[fractional],
            topo.edge_v[fractional],
        )
        order = np.argsort(senders, kind="stable")
        fractional = fractional[order]
        senders = senders[order]
        fracs = frac[fractional]

        # Segment boundaries per distinct sender.
        uniq_senders, seg_starts = np.unique(senders, return_index=True)
        seg_ends = np.append(seg_starts[1:], senders.size)

        # r_i per sender and cumulative fractions within each segment.
        cum = np.cumsum(fracs)
        seg_base = np.zeros(senders.size)
        seg_base[seg_starts[1:]] = cum[seg_ends[:-1] - 1]
        seg_base = np.maximum.accumulate(seg_base)
        cum_in_seg = cum - seg_base  # cumulative fraction inside the segment
        r_per_sender = cum_in_seg[seg_ends - 1]
        c_per_sender = np.ceil(r_per_sender - _FRAC_TOL)
        c_per_sender = np.maximum(c_per_sender, 1.0).astype(np.int64)

        # One uniform per token, scaled to [0, c_i); locate in the segment.
        total_tokens = int(c_per_sender.sum())
        token_seg = np.repeat(np.arange(uniq_senders.size), c_per_sender)
        draws = rng.random(total_tokens) * c_per_sender[token_seg]
        # Global positions: searchsorted over cum with per-token offset.
        global_target = seg_base[seg_starts[token_seg]] + draws
        pos = np.searchsorted(cum, global_target, side="right")
        # A draw beyond the segment's fraction total means the token stays.
        stays = pos >= seg_ends[token_seg]
        pos = pos[~stays]

        extra = np.bincount(pos, minlength=senders.size).astype(np.float64)
        rounded[fractional] += np.sign(flows[fractional]) * extra
        return rounded


_SCHEMES = {
    cls.key: cls
    for cls in (
        IdentityRounding,
        FloorRounding,
        NearestRounding,
        CeilRounding,
        UnbiasedEdgeRounding,
        RandomizedExcessRounding,
    )
}


def make_rounding(spec) -> RoundingScheme:
    """Build a rounding scheme from a key string or pass instances through."""
    if isinstance(spec, RoundingScheme):
        return spec
    if isinstance(spec, str):
        try:
            return _SCHEMES[spec]()
        except KeyError:
            raise RoundingError(
                f"unknown rounding scheme {spec!r}; known: {sorted(_SCHEMES)}"
            ) from None
    raise RoundingError(f"cannot interpret rounding spec {spec!r}")
