"""Matching-based (dimension-exchange) load balancing — the classic baseline.

Diffusion lets a node trade with *all* neighbours simultaneously; the other
classical family, introduced by Ghosh and Muthukrishnan (reference [17] of
the paper, "Dynamic load balancing by random matchings"), activates a
*matching* each round and lets every matched pair average their loads.  The
paper compares against diffusion throughout, but matching schemes are the
standard alternative and serve as the external baseline in our benches.

Two matching generators are provided:

* :class:`RandomMatchingScheme` — each round samples a random maximal
  matching by scanning a random edge permutation ([17]'s model),
* :class:`DimensionExchangeScheme` — rounds cycle through a fixed proper
  edge colouring (classic dimension exchange; on the hypercube the colours
  are exactly the dimensions, hence the name).

Both support the heterogeneous model: a matched pair ``{i, j}`` moves flow
``(x_i/s_i - x_j/s_j) * s_i s_j / (s_i + s_j)`` so that both nodes land on
their common speed-normalised average.  Discrete variants round that flow
with any :class:`~repro.core.rounding.RoundingScheme` — matching schemes are
linear, so the whole Lemma 2 deviation machinery applies to them as well
(each round has its own matrix ``M(t)``; the contribution series is the
product of the round matrices, see :func:`matching_contribution_matrices`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..graphs.topology import Topology
from .schemes import ContinuousScheme
from .state import LoadState

__all__ = [
    "RandomMatchingScheme",
    "DimensionExchangeScheme",
    "greedy_edge_coloring",
    "matching_contribution_matrices",
]


def greedy_edge_coloring(topo: Topology) -> List[np.ndarray]:
    """Partition the edges into matchings by greedy colouring.

    Returns a list of edge-id arrays, one per colour; uses at most
    ``2d - 1`` colours (greedy bound; Vizing guarantees ``d + 1`` exists
    but greedy is deterministic, linear-time, and good enough for round
    scheduling).
    """
    colors_of_node: List[set] = [set() for _ in range(topo.n)]
    edge_color = np.full(topo.m_edges, -1, dtype=np.int64)
    for e in range(topo.m_edges):
        u, v = int(topo.edge_u[e]), int(topo.edge_v[e])
        used = colors_of_node[u] | colors_of_node[v]
        color = 0
        while color in used:
            color += 1
        edge_color[e] = color
        colors_of_node[u].add(color)
        colors_of_node[v].add(color)
    n_colors = int(edge_color.max()) + 1 if topo.m_edges else 0
    return [np.nonzero(edge_color == c)[0] for c in range(n_colors)]


class _MatchingSchemeBase(ContinuousScheme):
    """Shared flow kernel for matching-based schemes."""

    uses_flow_history = False

    def __init__(self, topo: Topology, speeds: Optional[np.ndarray] = None):
        # Matching schemes have no alpha parameter: matched pairs average
        # completely.  Reuse the base class for speed handling only.
        super().__init__(topo, speeds=speeds, alphas=1.0)
        su = self.speeds[topo.edge_u]
        sv = self.speeds[topo.edge_v]
        self._pair_weight = su * sv / (su + sv)

    def _active_edges(self, round_index: int) -> np.ndarray:
        raise NotImplementedError

    def scheduled_flows(self, state: LoadState) -> np.ndarray:
        flows = np.zeros(self.topo.m_edges, dtype=np.float64)
        active = self._active_edges(state.round_index)
        if active.size == 0:
            return flows
        u = self.topo.edge_u[active]
        v = self.topo.edge_v[active]
        gradient = state.load[u] / self.speeds[u] - state.load[v] / self.speeds[v]
        flows[active] = self._pair_weight[active] * gradient
        return flows


class RandomMatchingScheme(_MatchingSchemeBase):
    """Random maximal matching per round ([17]'s random matching model).

    Each round scans a uniformly random permutation of the edges and greedily
    adds every edge whose endpoints are still free; matched pairs average
    their speed-normalised loads completely.

    The matching sequence is drawn from ``rng`` at construction-determined
    seed boundaries: calling :meth:`scheduled_flows` for round ``t`` always
    yields the same matching for the same ``t`` (derived generators), so
    paired continuous/discrete runs see identical matchings — a requirement
    for the deviation analysis.
    """

    def __init__(
        self,
        topo: Topology,
        speeds: Optional[np.ndarray] = None,
        seed: int = 0,
    ):
        super().__init__(topo, speeds=speeds)
        self.seed = int(seed)
        self._cache_round = -1
        self._cache_edges: Optional[np.ndarray] = None

    def matching_for_round(self, round_index: int) -> np.ndarray:
        """Edge ids of the (deterministic-per-round) random matching."""
        if round_index == self._cache_round and self._cache_edges is not None:
            return self._cache_edges
        rng = np.random.default_rng([self.seed, round_index])
        order = rng.permutation(self.topo.m_edges)
        taken = np.zeros(self.topo.n, dtype=bool)
        chosen = []
        for e in order:
            u, v = self.topo.edge_u[e], self.topo.edge_v[e]
            if not taken[u] and not taken[v]:
                taken[u] = taken[v] = True
                chosen.append(int(e))
        result = np.asarray(sorted(chosen), dtype=np.int64)
        self._cache_round = round_index
        self._cache_edges = result
        return result

    def _active_edges(self, round_index: int) -> np.ndarray:
        return self.matching_for_round(round_index)


class DimensionExchangeScheme(_MatchingSchemeBase):
    """Cycle through a fixed edge colouring (dimension exchange).

    Round ``t`` activates colour ``t mod #colours``.  On a ``k``-dimensional
    hypercube the greedy colouring recovers the ``k`` dimensions and the
    scheme is the textbook dimension exchange algorithm, which balances the
    continuous load completely in one sweep of all dimensions.
    """

    def __init__(self, topo: Topology, speeds: Optional[np.ndarray] = None):
        super().__init__(topo, speeds=speeds)
        self.matchings = greedy_edge_coloring(topo)
        if not self.matchings:
            raise ConfigurationError("graph has no edges to exchange over")

    @property
    def n_colors(self) -> int:
        """Number of matchings in the rotation."""
        return len(self.matchings)

    def _active_edges(self, round_index: int) -> np.ndarray:
        return self.matchings[round_index % self.n_colors]


def matching_contribution_matrices(
    scheme: _MatchingSchemeBase, t_max: int
) -> List[np.ndarray]:
    """Contribution matrices ``P(s)`` for a matching scheme run to ``t_max``.

    Matching schemes are time-inhomogeneous (``x(t+1) = M(t) x(t)``), so the
    Lemma 2 contributions depend on *which* round the error was injected:
    an error on edge ``e`` at the end of round ``r`` is propagated by
    ``M(t_max-1) ... M(r+1)``.  This returns, for every ``s = t_max - r``,
    the product ``P(s) = M(t_max-1) ... M(t_max-s+1)`` (``P(1) = I``), i.e.
    matrices aligned with :func:`repro.core.deviation.lemma2_rhs`'s indexing
    for the *final* round ``t_max``.
    """
    if t_max < 0:
        raise ConfigurationError(f"t_max must be >= 0, got {t_max}")
    topo = scheme.topo
    n = topo.n

    def round_matrix(round_index: int) -> np.ndarray:
        m = np.eye(n)
        active = scheme._active_edges(round_index)
        for e in active:
            u, v = int(topo.edge_u[e]), int(topo.edge_v[e])
            su, sv = scheme.speeds[u], scheme.speeds[v]
            # Pair averaging: both nodes end on the common normalised level.
            m[u, u] = 1.0 - sv / (su + sv)
            m[u, v] = su / (su + sv)
            m[v, v] = 1.0 - su / (su + sv)
            m[v, u] = sv / (su + sv)
        return m

    mats: List[np.ndarray] = [np.zeros((n, n)), np.eye(n)]
    acc = np.eye(n)
    for s in range(2, t_max + 1):
        acc = acc @ round_matrix(t_max - s + 1)
        mats.append(acc.copy())
    return mats[: t_max + 1]
