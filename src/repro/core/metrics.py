"""Load-distribution quality metrics (Section VI of the paper).

The paper tracks five quantities during a run; all are implemented here:

1. **maximum local load difference** ``phi_local`` — the largest load gap
   across any single edge,
2. **maximum load minus average** ``phi_global = max_v x_v - x̄`` (for
   heterogeneous networks: the largest excess over each node's own target),
3. **2-norm potential** ``phi_t = sum_v (x_v - x̄_v)^2`` (plotted as
   ``phi_t / n``),
4. impact of eigenvectors on the load (in :mod:`repro.analysis.coefficients`),
5. **remaining imbalance** of the converged system (in
   :mod:`repro.analysis.imbalance`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError
from ..graphs.topology import Topology

__all__ = [
    "target_loads",
    "max_local_difference",
    "max_minus_average",
    "min_minus_average",
    "potential",
    "normalized_potential",
    "max_deviation",
    "discrepancy",
    "initial_discrepancy_K",
]


def target_loads(total: float, speeds: np.ndarray) -> np.ndarray:
    """The balanced vector ``x̄_i = total * s_i / s`` (Section I)."""
    speeds = np.asarray(speeds, dtype=np.float64)
    s = speeds.sum()
    if s <= 0:
        raise ConfigurationError("speeds must sum to a positive value")
    return total * speeds / s


def max_local_difference(topo: Topology, load: np.ndarray) -> float:
    """``phi_local = max_{(u,v) in E} |x_u - x_v|`` — metric 1 of Section VI."""
    if topo.m_edges == 0:
        return 0.0
    return float(np.abs(load[topo.edge_u] - load[topo.edge_v]).max())


def max_minus_average(load: np.ndarray, targets: Optional[np.ndarray] = None) -> float:
    """``phi_global``: maximum excess load over the target.

    With ``targets=None`` (homogeneous) this is ``max_v x_v - mean(x)``,
    exactly the paper's metric 2; in the heterogeneous case it generalises to
    ``max_v (x_v - x̄_v)``.
    """
    load = np.asarray(load, dtype=np.float64)
    if targets is None:
        return float(load.max() - load.mean())
    return float((load - np.asarray(targets, dtype=np.float64)).max())


def min_minus_average(load: np.ndarray, targets: Optional[np.ndarray] = None) -> float:
    """Minimum slack ``min_v (x_v - x̄_v)`` (negative while unbalanced)."""
    load = np.asarray(load, dtype=np.float64)
    if targets is None:
        return float(load.min() - load.mean())
    return float((load - np.asarray(targets, dtype=np.float64)).min())


def potential(load: np.ndarray, targets: Optional[np.ndarray] = None) -> float:
    """The 2-norm potential ``phi_t = sum_v (x_v - x̄_v)^2`` of [19]."""
    load = np.asarray(load, dtype=np.float64)
    ref = load.mean() if targets is None else np.asarray(targets, dtype=np.float64)
    diff = load - ref
    return float(diff @ diff)


def normalized_potential(load: np.ndarray, targets: Optional[np.ndarray] = None) -> float:
    """``phi_t / n`` — the quantity the paper's figures plot."""
    return potential(load, targets) / load.shape[0]


def max_deviation(a: np.ndarray, b: np.ndarray) -> float:
    """Deviation between two load vectors: ``max_i |a_i - b_i|`` (Section I)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ConfigurationError(f"shape mismatch {a.shape} vs {b.shape}")
    return float(np.abs(a - b).max())


def discrepancy(load: np.ndarray) -> float:
    """Global discrepancy ``max_v x_v - min_v x_v``."""
    load = np.asarray(load, dtype=np.float64)
    return float(load.max() - load.min())


def initial_discrepancy_K(load: np.ndarray) -> float:
    """The paper's ``K``: max minus min load at the beginning of the process."""
    return discrepancy(load)
