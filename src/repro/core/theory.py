"""Theoretical bound formulas from the paper, as executable functions.

These express the asymptotic results (convergence times, deviation bounds)
with their leading functional form so that benches and tests can compare
measured quantities against ``scale * bound``.  Every function takes an
explicit ``scale`` defaulting to 1 — the paper's O-notation hides constants,
so callers calibrate the scale once per experiment when they want a hard
numeric comparison.

``log smax`` factors are floored at 1 so the bounds stay meaningful on
homogeneous networks (``smax = 1``), matching how the paper's homogeneous
corollaries read.
"""

from __future__ import annotations

import math

from ..exceptions import ConfigurationError

__all__ = [
    "fos_convergence_rounds",
    "sos_convergence_rounds",
    "theorem3_deviation",
    "theorem4_upsilon",
    "theorem4_deviation",
    "observation3_upsilon",
    "theorem8_deviation",
    "theorem9_upsilon",
    "theorem9_deviation",
]


def _check_gap(lam: float) -> float:
    if not 0.0 <= lam < 1.0:
        raise ConfigurationError(f"lambda must be in [0, 1), got {lam}")
    return 1.0 - lam


def _log_smax(smax: float) -> float:
    if smax < 1.0:
        raise ConfigurationError(f"smax must be >= 1, got {smax}")
    return max(1.0, math.log(smax))


def fos_convergence_rounds(k_disc: float, n: int, lam: float,
                           smax: float = 1.0, scale: float = 1.0) -> float:
    """FOS balancing time ``O(log(K n smax) / (1 - lambda))`` ([11], [19])."""
    if k_disc < 1 or n < 1:
        raise ConfigurationError(f"need K >= 1 and n >= 1, got ({k_disc}, {n})")
    gap = _check_gap(lam)
    return scale * math.log(max(k_disc * n * smax, math.e)) / gap


def sos_convergence_rounds(k_disc: float, n: int, lam: float,
                           smax: float = 1.0, scale: float = 1.0) -> float:
    """SOS balancing time ``O(log(K n smax) / sqrt(1 - lambda))`` ([19])."""
    if k_disc < 1 or n < 1:
        raise ConfigurationError(f"need K >= 1 and n >= 1, got ({k_disc}, {n})")
    gap = _check_gap(lam)
    return scale * math.log(max(k_disc * n * smax, math.e)) / math.sqrt(gap)


def theorem3_deviation(upsilon: float, max_degree: int, n: int,
                       scale: float = 1.0) -> float:
    """Theorem 3: deviation ``O(Upsilon_C(G) * sqrt(d log n))`` w.h.p."""
    if upsilon < 0 or max_degree < 1 or n < 2:
        raise ConfigurationError("need upsilon >= 0, d >= 1, n >= 2")
    return scale * upsilon * math.sqrt(max_degree * math.log(n))


def observation3_upsilon(max_degree: int, gamma: float, scale: float = 1.0) -> float:
    """Observation 3 (1): ``Upsilon = O(sqrt(gamma d / (2 - 2/gamma)))``."""
    if max_degree < 1 or gamma <= 1.0:
        raise ConfigurationError("need d >= 1 and gamma > 1")
    return scale * math.sqrt(gamma * max_degree / (2.0 - 2.0 / gamma))


def theorem4_upsilon(max_degree: int, smax: float, lam: float,
                     scale: float = 1.0) -> float:
    """Theorem 4 (1): ``Upsilon_FOS = O(sqrt(d log smax / (1 - lambda)))``."""
    gap = _check_gap(lam)
    if max_degree < 1:
        raise ConfigurationError(f"need d >= 1, got {max_degree}")
    return scale * math.sqrt(max_degree * _log_smax(smax) / gap)


def theorem4_deviation(max_degree: int, n: int, smax: float, lam: float,
                       scale: float = 1.0) -> float:
    """Theorem 4 (2): FOS deviation ``O(d sqrt(log n * log smax / (1-lambda)))``."""
    gap = _check_gap(lam)
    if max_degree < 1 or n < 2:
        raise ConfigurationError("need d >= 1 and n >= 2")
    return scale * max_degree * math.sqrt(math.log(n) * _log_smax(smax) / gap)


def theorem8_deviation(max_degree: int, n: int, smax: float, lam: float,
                       scale: float = 1.0) -> float:
    """Theorem 8: floor-or-ceiling SOS deviation ``O(d sqrt(n smax)/(1-lambda))``.

    The proof yields the explicit constant ``16 sqrt(2)``; pass
    ``scale = 16 * sqrt(2)`` for the hard bound.
    """
    gap = _check_gap(lam)
    if max_degree < 1 or n < 1:
        raise ConfigurationError("need d >= 1 and n >= 1")
    if smax < 1.0:
        raise ConfigurationError(f"smax must be >= 1, got {smax}")
    return scale * max_degree * math.sqrt(n * smax) / gap


def theorem9_upsilon(max_degree: int, smax: float, lam: float,
                     scale: float = 1.0) -> float:
    """Theorem 9 (1): ``Upsilon_SOS = O(sqrt(d) log smax / (1-lambda)^{3/4})``."""
    gap = _check_gap(lam)
    if max_degree < 1:
        raise ConfigurationError(f"need d >= 1, got {max_degree}")
    return scale * math.sqrt(max_degree) * _log_smax(smax) / gap ** 0.75


def theorem9_deviation(max_degree: int, n: int, smax: float, lam: float,
                       scale: float = 1.0) -> float:
    """Theorem 9 (2): randomized SOS deviation
    ``O(d log smax sqrt(log n) / (1-lambda)^{3/4})`` w.h.p."""
    gap = _check_gap(lam)
    if max_degree < 1 or n < 2:
        raise ConfigurationError("need d >= 1 and n >= 2")
    return scale * max_degree * _log_smax(smax) * math.sqrt(math.log(n)) / gap ** 0.75
