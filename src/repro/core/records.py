"""Columnar storage for per-round metric records.

:class:`RecordTable` replaces the per-round list of
:class:`~repro.core.simulator.RoundRecord` objects with preallocated numpy
columns — one array per Section VI metric — so that

* recording a round is a handful of scalar stores instead of an object
  allocation,
* :meth:`~repro.core.simulator.SimulationResult.series` returns a zero-copy
  view instead of rebuilding a Python list per call, and
* batched engines (:mod:`repro.engines`) can write whole ``(rounds, B)``
  metric blocks and slice per-replica tables out without touching Python
  objects.

The canonical field set (:data:`RECORD_FIELDS`) is shared with the CSV
exporter in :mod:`repro.viz.series` and the JSON archiver in
:mod:`repro.io.results`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "RECORD_FIELDS",
    "FLOAT_FIELDS",
    "DYNAMIC_FIELDS",
    "DYNAMIC_FLOAT_FIELDS",
    "RecordTable",
    "DynamicRecordTable",
    "StreamingStats",
]

#: Every column of a record table, in canonical export order.
RECORD_FIELDS = (
    "round_index",
    "scheme",
    "max_minus_avg",
    "min_minus_avg",
    "max_local_diff",
    "potential_per_node",
    "min_load",
    "min_transient",
    "total_load",
    "round_traffic",
)

#: The float64 metric columns (everything except round index and scheme).
FLOAT_FIELDS = tuple(f for f in RECORD_FIELDS if f not in ("round_index", "scheme"))

#: Every column of a dynamic (online-arrival) record table.  Unlike the
#: static fields, the imbalance metrics are measured against the *current*
#: average — the natural target when the total changes over time — and the
#: per-round token accounting (``arrived``/``departed``/``clamped``) makes
#: totals exactly reconstructible:
#: ``total[t] == total[t-1] + arrived[t] - departed[t]``, with ``clamped``
#: the departure volume that was requested but refused because the node had
#: no (non-negative) load left to consume.
DYNAMIC_FIELDS = (
    "round_index",
    "total_load",
    "arrived",
    "departed",
    "clamped",
    "max_minus_avg",
    "max_local_diff",
    "potential_per_node",
)

#: The float64 columns of a dynamic record table.
DYNAMIC_FLOAT_FIELDS = tuple(f for f in DYNAMIC_FIELDS if f != "round_index")

_SCHEME_DTYPE = "<U32"


class StreamingStats:
    """Running aggregates of record columns: min / max / sum / last per field.

    The streaming counterpart of keeping a dense ``(rounds, width)`` column
    block: each :meth:`update` folds one recorded round into ``O(fields x
    width)`` state, so memory is independent of how many rounds are recorded.
    ``width`` is the replica count for batched engines (each aggregate is a
    ``(width,)`` array).  Sums accumulate row by row — the same order
    :meth:`RecordTable.summary` uses — so a streaming run and a dense table
    reduce to bit-identical aggregates.
    """

    __slots__ = (
        "fields",
        "width",
        "count",
        "first_round",
        "last_round",
        "mins",
        "maxs",
        "sums",
        "last",
    )

    def __init__(self, fields, width: int):
        self.fields = tuple(fields)
        self.width = int(width)
        self.count = 0
        self.first_round = -1
        self.last_round = -1
        self.mins = {f: np.full(self.width, np.inf) for f in self.fields}
        self.maxs = {f: np.full(self.width, -np.inf) for f in self.fields}
        self.sums = {f: np.zeros(self.width) for f in self.fields}
        self.last = {f: np.full(self.width, np.nan) for f in self.fields}

    def update(self, round_index: int, values: Dict[str, np.ndarray]) -> None:
        """Fold one recorded round (``values[field]`` is ``(width,)``) in."""
        if self.count == 0:
            self.first_round = int(round_index)
        self.last_round = int(round_index)
        self.count += 1
        for name in self.fields:
            v = np.asarray(values[name], dtype=np.float64)
            np.minimum(self.mins[name], v, out=self.mins[name])
            np.maximum(self.maxs[name], v, out=self.maxs[name])
            self.sums[name] += v
            self.last[name][...] = v

    @classmethod
    def concat(cls, parts: Sequence["StreamingStats"]) -> "StreamingStats":
        """Width-concatenate per-shard stats into one batch-wide object.

        The sharded engine's merge step: each worker streams its own
        replica columns through a :class:`StreamingStats`, and because
        every aggregate is per-replica (no cross-replica reduction ever
        happens), concatenating the aggregate arrays reproduces exactly
        the object a single-process run over the full batch would hold.
        All parts must describe the same record grid (same fields, same
        round count and first/last round) — anything else means the shards
        ran different workloads, which raises.
        """
        parts = list(parts)
        if not parts:
            raise ConfigurationError("concat needs at least one StreamingStats")
        first = parts[0]
        for other in parts[1:]:
            if (
                other.fields != first.fields
                or other.count != first.count
                or other.first_round != first.first_round
                or other.last_round != first.last_round
            ):
                raise ConfigurationError(
                    "cannot concatenate StreamingStats with different "
                    "fields or record grids"
                )
        merged = cls(first.fields, sum(p.width for p in parts))
        merged.count = first.count
        merged.first_round = first.first_round
        merged.last_round = first.last_round
        for name in first.fields:
            for store in ("mins", "maxs", "sums", "last"):
                getattr(merged, store)[name] = np.concatenate(
                    [getattr(p, store)[name] for p in parts]
                )
        return merged

    def replica_summary(self, b: int, all_fields=None) -> Dict[str, float]:
        """One replica's aggregates as the flat :meth:`RecordTable.summary`
        dict; fields outside the tracked set come back as NaN."""
        out: Dict[str, object] = {
            "rows": self.count,
            "first_round": self.first_round,
            "last_round": self.last_round,
        }
        for name in all_fields if all_fields is not None else self.fields:
            if name in self.sums and self.count:
                out[f"{name}_min"] = float(self.mins[name][b])
                out[f"{name}_max"] = float(self.maxs[name][b])
                out[f"{name}_sum"] = float(self.sums[name][b])
                out[f"{name}_mean"] = float(self.sums[name][b]) / self.count
                out[f"{name}_last"] = float(self.last[name][b])
            else:
                for suffix in ("min", "max", "sum", "mean", "last"):
                    out[f"{name}_{suffix}"] = float("nan")
        return out


def _column_summary(
    fields, rows: int, column, round_index: np.ndarray
) -> Dict[str, object]:
    """Flat aggregate dict over a dense table's columns.

    Sums accumulate row by row to match :class:`StreamingStats` bit for bit.
    """
    out: Dict[str, object] = {
        "rows": rows,
        "first_round": int(round_index[0]) if rows else -1,
        "last_round": int(round_index[-1]) if rows else -1,
    }
    for name in fields:
        if rows:
            col = column(name)
            acc = 0.0
            for i in range(rows):
                acc += float(col[i])
            out[f"{name}_min"] = float(col.min())
            out[f"{name}_max"] = float(col.max())
            out[f"{name}_sum"] = acc
            out[f"{name}_mean"] = acc / rows
            out[f"{name}_last"] = float(col[-1])
        else:
            for suffix in ("min", "max", "sum", "mean", "last"):
                out[f"{name}_{suffix}"] = float("nan")
    return out


class RecordTable:
    """Preallocated columnar table of per-round records.

    Parameters
    ----------
    capacity:
        Number of rows to preallocate.  The table grows automatically when
        more rows are appended, but sizing it correctly up front
        (``rounds // record_every + 2``) avoids reallocation entirely.
    """

    __slots__ = ("_capacity", "_size", "_round_index", "_scheme", "_floats", "_summary")

    def __init__(self, capacity: int = 16):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._size = 0
        self._round_index = np.empty(self._capacity, dtype=np.int64)
        self._scheme = np.empty(self._capacity, dtype=_SCHEME_DTYPE)
        self._floats: Dict[str, np.ndarray] = {
            name: np.empty(self._capacity, dtype=np.float64) for name in FLOAT_FIELDS
        }
        #: pre-aggregated summary of a streaming-mode run (None = dense table)
        self._summary: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def _grow(self) -> None:
        self._capacity *= 2
        self._round_index = np.resize(self._round_index, self._capacity)
        self._scheme = np.resize(self._scheme, self._capacity)
        for name, col in self._floats.items():
            self._floats[name] = np.resize(col, self._capacity)

    def append(self, round_index: int, scheme: str, **values: float) -> None:
        """Append one row; ``values`` must cover every float field."""
        i = self._size
        if i == self._capacity:
            self._grow()
        self._round_index[i] = round_index
        self._scheme[i] = scheme
        floats = self._floats
        for name in FLOAT_FIELDS:
            floats[name][i] = values[name]
        self._size = i + 1

    # ------------------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """Read-only view of one column, trimmed to the filled rows."""
        if name == "round_index":
            out = self._round_index[: self._size]
        elif name == "scheme":
            out = self._scheme[: self._size]
        else:
            try:
                out = self._floats[name][: self._size]
            except KeyError:
                raise ConfigurationError(
                    f"unknown record field {name!r}; known: {RECORD_FIELDS}"
                ) from None
        out = out.view()
        out.setflags(write=False)
        return out

    def row(self, index: int) -> Dict[str, object]:
        """One row as a plain field -> value dict."""
        if not -self._size <= index < self._size:
            raise IndexError(f"row {index} out of range for table of {self._size}")
        if index < 0:
            index += self._size
        row: Dict[str, object] = {
            "round_index": int(self._round_index[index]),
            "scheme": str(self._scheme[index]),
        }
        for name in FLOAT_FIELDS:
            row[name] = float(self._floats[name][index])
        return row

    def to_columns(self) -> Dict[str, np.ndarray]:
        """All columns (trimmed views) keyed by field name, export order."""
        return {name: self.column(name) for name in RECORD_FIELDS}

    def iter_rows(self) -> Iterator[Dict[str, object]]:
        for i in range(self._size):
            yield self.row(i)

    def summary(self) -> Dict[str, object]:
        """Aggregates per float field: ``<field>_{min,max,sum,mean,last}``
        plus ``rows`` / ``first_round`` / ``last_round``.

        A streaming table (:meth:`from_summary`) returns its stored running
        aggregates; a dense table reduces its columns on the fly with the
        same accumulation order, so both modes agree bit for bit.
        """
        if self._summary is not None:
            return dict(self._summary)
        return _column_summary(
            FLOAT_FIELDS, self._size, self.column, self._round_index
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_summary(
        cls,
        last_round: int,
        last_scheme: str,
        last_values: Dict[str, float],
        summary: Dict[str, object],
    ) -> "RecordTable":
        """Build a streaming (single-row) table from running aggregates.

        The one stored row is the *last* recorded round, so terminal-state
        consumers (``records[-1]``, final-value reductions) keep working;
        the full per-round history was never materialised.  Float fields
        missing from ``last_values`` are stored as NaN.
        """
        table = cls(capacity=1)
        table.append(
            int(last_round),
            last_scheme,
            **{
                name: float(last_values.get(name, float("nan")))
                for name in FLOAT_FIELDS
            },
        )
        table._summary = dict(summary)
        return table

    @classmethod
    def from_columns(
        cls,
        round_index: np.ndarray,
        scheme: np.ndarray,
        floats: Dict[str, np.ndarray],
    ) -> "RecordTable":
        """Build a table directly from complete column arrays.

        Used by the batched engine, which computes whole metric columns at
        once instead of appending row by row.
        """
        round_index = np.asarray(round_index, dtype=np.int64)
        size = round_index.shape[0]
        missing = set(FLOAT_FIELDS) - set(floats)
        if missing:
            raise ConfigurationError(f"missing record columns: {sorted(missing)}")
        table = cls(capacity=max(size, 1))
        table._round_index[:size] = round_index
        table._scheme[:size] = np.asarray(scheme, dtype=_SCHEME_DTYPE)
        for name in FLOAT_FIELDS:
            col = np.asarray(floats[name], dtype=np.float64)
            if col.shape != (size,):
                raise ConfigurationError(
                    f"column {name!r} has shape {col.shape}, expected ({size},)"
                )
            table._floats[name][:size] = col
        table._size = size
        return table


class DynamicRecordTable:
    """Preallocated columnar table of dynamic (online-arrival) round records.

    Same storage discipline as :class:`RecordTable` — one numpy column per
    :data:`DYNAMIC_FIELDS` entry, preallocated and trimmed on read — but for
    the dynamic regime: no scheme column (the dynamic core does not switch
    schemes mid-run) and one row per *executed* round (there is no round-0
    row; the interesting state is always post-arrival, post-balance).
    """

    __slots__ = ("_capacity", "_size", "_round_index", "_floats", "_summary")

    def __init__(self, capacity: int = 16):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._size = 0
        self._round_index = np.empty(self._capacity, dtype=np.int64)
        self._floats: Dict[str, np.ndarray] = {
            name: np.empty(self._capacity, dtype=np.float64)
            for name in DYNAMIC_FLOAT_FIELDS
        }
        #: pre-aggregated summary of a streaming-mode run (None = dense table)
        self._summary: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def _grow(self) -> None:
        self._capacity *= 2
        self._round_index = np.resize(self._round_index, self._capacity)
        for name, col in self._floats.items():
            self._floats[name] = np.resize(col, self._capacity)

    def append(self, round_index: int, **values: float) -> None:
        """Append one row; ``values`` must cover every float field."""
        i = self._size
        if i == self._capacity:
            self._grow()
        self._round_index[i] = round_index
        floats = self._floats
        for name in DYNAMIC_FLOAT_FIELDS:
            floats[name][i] = values[name]
        self._size = i + 1

    # ------------------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """Read-only view of one column, trimmed to the filled rows."""
        if name == "round_index":
            out = self._round_index[: self._size]
        else:
            try:
                out = self._floats[name][: self._size]
            except KeyError:
                raise ConfigurationError(
                    f"unknown dynamic record field {name!r}; "
                    f"known: {DYNAMIC_FIELDS}"
                ) from None
        out = out.view()
        out.setflags(write=False)
        return out

    def row(self, index: int) -> Dict[str, object]:
        """One row as a plain field -> value dict."""
        if not -self._size <= index < self._size:
            raise IndexError(f"row {index} out of range for table of {self._size}")
        if index < 0:
            index += self._size
        row: Dict[str, object] = {"round_index": int(self._round_index[index])}
        for name in DYNAMIC_FLOAT_FIELDS:
            row[name] = float(self._floats[name][index])
        return row

    def to_columns(self) -> Dict[str, np.ndarray]:
        """All columns (trimmed views) keyed by field name, export order."""
        return {name: self.column(name) for name in DYNAMIC_FIELDS}

    def iter_rows(self) -> Iterator[Dict[str, object]]:
        for i in range(self._size):
            yield self.row(i)

    def summary(self) -> Dict[str, object]:
        """Aggregates per float field — see :meth:`RecordTable.summary`."""
        if self._summary is not None:
            return dict(self._summary)
        return _column_summary(
            DYNAMIC_FLOAT_FIELDS, self._size, self.column, self._round_index
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_summary(
        cls,
        last_round: int,
        last_values: Dict[str, float],
        summary: Dict[str, object],
    ) -> "DynamicRecordTable":
        """Build a streaming (single-row) table from running aggregates."""
        table = cls(capacity=1)
        table.append(
            int(last_round),
            **{
                name: float(last_values.get(name, float("nan")))
                for name in DYNAMIC_FLOAT_FIELDS
            },
        )
        table._summary = dict(summary)
        return table

    @classmethod
    def from_columns(
        cls, round_index: np.ndarray, floats: Dict[str, np.ndarray]
    ) -> "DynamicRecordTable":
        """Build a table directly from complete column arrays.

        Used by the batched engine, which computes whole ``(rounds, B)``
        dynamic metric blocks and slices per-replica tables out at the end.
        """
        round_index = np.asarray(round_index, dtype=np.int64)
        size = round_index.shape[0]
        missing = set(DYNAMIC_FLOAT_FIELDS) - set(floats)
        if missing:
            raise ConfigurationError(
                f"missing dynamic record columns: {sorted(missing)}"
            )
        table = cls(capacity=max(size, 1))
        table._round_index[:size] = round_index
        for name in DYNAMIC_FLOAT_FIELDS:
            col = np.asarray(floats[name], dtype=np.float64)
            if col.shape != (size,):
                raise ConfigurationError(
                    f"column {name!r} has shape {col.shape}, expected ({size},)"
                )
            table._floats[name][:size] = col
        table._size = size
        return table
