"""Core algorithms: diffusion schemes, rounding, simulation, and theory.

This package implements the paper's primary contribution:

* continuous FOS/SOS schemes on (heterogeneous) networks
  (:mod:`~repro.core.schemes`),
* the randomized-rounding discretisation framework of Section III-B
  (:mod:`~repro.core.rounding`),
* the synchronous simulator with hybrid SOS->FOS switching
  (:mod:`~repro.core.simulator`, :mod:`~repro.core.hybrid`),
* spectral utilities (``lambda``, ``beta_opt``, ``Q(t)``) and the deviation /
  divergence / negative-load analysis machinery backing the paper's theorems.
"""

from .alphas import (
    ALPHA_STRATEGIES,
    constant_alpha,
    heterogeneous_safe,
    lazy_metropolis,
    max_degree_plus_one,
    resolve_alphas,
    uniform_alpha,
)
from .matrices import (
    check_diffusion_matrix,
    diffusion_matrix,
    diffusion_matrix_sparse,
    symmetrized_matrix,
    weighted_laplacian,
)
from .spectral import (
    beta_opt,
    complete_lambda,
    cycle_lambda,
    eigenvalues,
    gamma_closed_form,
    hypercube_lambda,
    hypercube_spectrum,
    q_matrices,
    q_matrix_at,
    second_largest_eigenvalue,
    spectral_gap,
    torus_lambda,
    torus_spectrum,
)
from .state import (
    LoadState,
    apply_flows,
    incoming_per_node,
    outgoing_per_node,
    point_load,
    proportional_load,
    random_load,
    transient_loads,
    uniform_load,
)
from .schemes import ContinuousScheme, FirstOrderScheme, SecondOrderScheme
from .chebyshev import ChebyshevScheme, chebyshev_omegas
from .rounding import (
    CeilRounding,
    FloorRounding,
    IdentityRounding,
    NearestRounding,
    RandomizedExcessRounding,
    RoundingScheme,
    UnbiasedEdgeRounding,
    make_rounding,
)
from .process import LoadBalancingProcess, StepInfo
from .records import RECORD_FIELDS, RecordTable
from .hybrid import (
    FixedRoundSwitch,
    LocalDifferenceSwitch,
    NeverSwitch,
    PotentialPlateauSwitch,
    SwitchPolicy,
)
from .simulator import RoundRecord, SimulationResult, SimulationRun, Simulator
from .metrics import (
    discrepancy,
    initial_discrepancy_K,
    max_deviation,
    max_local_difference,
    max_minus_average,
    min_minus_average,
    normalized_potential,
    potential,
    target_loads,
)
from .deviation import (
    PairedRun,
    check_linearity,
    contribution_matrices,
    edge_contributions,
    lemma2_rhs,
    run_paired,
)
from .divergence import divergence_term, refined_local_divergence
from .matching import (
    DimensionExchangeScheme,
    RandomMatchingScheme,
    greedy_edge_coloring,
    matching_contribution_matrices,
)
from .dynamic import (
    ArrivalModel,
    BurstArrivals,
    DynamicResult,
    DynamicRoundRecord,
    DynamicRun,
    DynamicSimulator,
    HotspotArrivals,
    NoArrivals,
    PoissonArrivals,
    arrival_stream,
    arrival_streams,
    batch_arrival_stream,
    make_arrival_model,
)
from .churn import (
    ChurnEvent,
    ChurnPatch,
    ChurnPlan,
    ChurnSchedule,
    RandomChurn,
    edge_add,
    edge_remove,
    node_crash,
    node_join,
    node_leave,
    parse_churn_spec,
    plan_churn,
    random_churn_schedule,
    resolve_churn,
)
from .records import DynamicRecordTable
from .negative_load import (
    NegativeLoadTracker,
    initial_delta,
    minimum_safe_initial_load,
    observation5_bound,
    theorem10_bound,
    theorem11_bound,
)
from . import theory

__all__ = [
    # churn
    "ChurnEvent",
    "ChurnPatch",
    "ChurnPlan",
    "ChurnSchedule",
    "RandomChurn",
    "edge_add",
    "edge_remove",
    "node_crash",
    "node_join",
    "node_leave",
    "parse_churn_spec",
    "plan_churn",
    "random_churn_schedule",
    "resolve_churn",
    # alphas
    "ALPHA_STRATEGIES",
    "constant_alpha",
    "heterogeneous_safe",
    "lazy_metropolis",
    "max_degree_plus_one",
    "resolve_alphas",
    "uniform_alpha",
    # matrices
    "check_diffusion_matrix",
    "diffusion_matrix",
    "diffusion_matrix_sparse",
    "symmetrized_matrix",
    "weighted_laplacian",
    # spectral
    "beta_opt",
    "complete_lambda",
    "cycle_lambda",
    "eigenvalues",
    "gamma_closed_form",
    "hypercube_lambda",
    "hypercube_spectrum",
    "q_matrices",
    "q_matrix_at",
    "second_largest_eigenvalue",
    "spectral_gap",
    "torus_lambda",
    "torus_spectrum",
    # state
    "LoadState",
    "apply_flows",
    "incoming_per_node",
    "outgoing_per_node",
    "point_load",
    "proportional_load",
    "random_load",
    "transient_loads",
    "uniform_load",
    # schemes
    "ContinuousScheme",
    "FirstOrderScheme",
    "SecondOrderScheme",
    "ChebyshevScheme",
    "chebyshev_omegas",
    # rounding
    "CeilRounding",
    "FloorRounding",
    "IdentityRounding",
    "NearestRounding",
    "RandomizedExcessRounding",
    "RoundingScheme",
    "UnbiasedEdgeRounding",
    "make_rounding",
    # process / simulator
    "LoadBalancingProcess",
    "StepInfo",
    "RECORD_FIELDS",
    "RecordTable",
    "RoundRecord",
    "SimulationResult",
    "SimulationRun",
    "Simulator",
    # hybrid
    "FixedRoundSwitch",
    "LocalDifferenceSwitch",
    "NeverSwitch",
    "PotentialPlateauSwitch",
    "SwitchPolicy",
    # metrics
    "discrepancy",
    "initial_discrepancy_K",
    "max_deviation",
    "max_local_difference",
    "max_minus_average",
    "min_minus_average",
    "normalized_potential",
    "potential",
    "target_loads",
    # deviation / divergence / negative load
    "PairedRun",
    "check_linearity",
    "contribution_matrices",
    "edge_contributions",
    "lemma2_rhs",
    "run_paired",
    "divergence_term",
    "refined_local_divergence",
    # matching baselines
    "DimensionExchangeScheme",
    "RandomMatchingScheme",
    "greedy_edge_coloring",
    "matching_contribution_matrices",
    # dynamic workloads
    "ArrivalModel",
    "BurstArrivals",
    "DynamicRecordTable",
    "DynamicResult",
    "DynamicRoundRecord",
    "DynamicRun",
    "DynamicSimulator",
    "HotspotArrivals",
    "NoArrivals",
    "PoissonArrivals",
    "arrival_stream",
    "arrival_streams",
    "batch_arrival_stream",
    "make_arrival_model",
    "NegativeLoadTracker",
    "initial_delta",
    "minimum_safe_initial_load",
    "observation5_bound",
    "theorem10_bound",
    "theorem11_bound",
    "theory",
]
