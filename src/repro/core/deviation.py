"""Deviation machinery: contributions, paired runs, and Lemma 2.

The paper's central analytical tool (Lemma 2) is an *exact identity*: for a
linear continuous process ``C`` and its discrete version ``D``,

    ``x_D_k(t) - x_C_k(t)
      = sum_{s=1..t} sum_{{i,j} in E} e_ij(t-s) * C^C_{k,i->j}(s)``,

where ``e_ij(t) = Yhat_ij(t) - y_D_ij(t)`` is the rounding error of round
``t`` (``Yhat = C(x_D(t))`` is the continuous scheduled flow computed on the
*discrete* state) and ``C^C_{k,i->j}(s)`` is the contribution of edge
``(i,j)`` on node ``k`` after ``s`` rounds (Definitions 3 and 5).

This module computes the contribution series in closed matrix form —
``M^s`` columns for FOS, ``Q(s-1)`` columns for SOS (Lemma 6) — runs the
paired discrete/continuous processes, and evaluates both sides of the
identity so the test-suite can check them for equality to float precision.
It also verifies linearity (Definitions 2/4) numerically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..graphs.topology import Topology
from .matrices import diffusion_matrix
from .process import LoadBalancingProcess
from .schemes import ContinuousScheme, FirstOrderScheme, SecondOrderScheme
from .spectral import q_matrices
from .state import LoadState, apply_flows

__all__ = [
    "contribution_matrices",
    "edge_contributions",
    "PairedRun",
    "run_paired",
    "lemma2_rhs",
    "check_linearity",
]


def contribution_matrices(scheme: ContinuousScheme, t_max: int) -> List[np.ndarray]:
    """Matrices ``P(s)`` such that ``C_{k,i->j}(s) = P(s)_{k,i} - P(s)_{k,j}``.

    An error injected on an edge at the end of some round diffuses for
    ``s - 1`` further rounds before it is observed ``s`` rounds later, so
    (with ``P(0) = 0`` unused — the Lemma 2 sum starts at ``s = 1``):

    * FOS:  ``P(s) = M^(s-1)`` for ``s >= 1`` (so ``P(1) = I``),
    * SOS (Definition 5 + Lemma 6): ``P(s) = Q(s-1)`` for ``s >= 1``
      (so ``P(1) = Q(0) = I``).

    Returns ``[P(0), ..., P(t_max)]``.
    """
    if t_max < 0:
        raise ConfigurationError(f"t_max must be >= 0, got {t_max}")
    m = diffusion_matrix(scheme.topo, scheme.speeds, scheme.alphas)
    if isinstance(scheme, SecondOrderScheme):
        mats: List[np.ndarray] = [np.zeros_like(m)]
        mats.extend(q for _, q in zip(range(t_max), q_matrices(m, scheme.beta, t_max)))
        return mats
    if isinstance(scheme, FirstOrderScheme):
        mats = [np.zeros_like(m), np.eye(scheme.topo.n)]
        for _ in range(t_max - 1):
            mats.append(m @ mats[-1])
        return mats[: t_max + 1]
    raise ConfigurationError(f"unsupported scheme type {type(scheme).__name__}")


def edge_contributions(topo: Topology, p_matrix: np.ndarray) -> np.ndarray:
    """``(n, m_edges)`` array of ``C_{k,i->j}`` for all k and oriented edges."""
    return p_matrix[:, topo.edge_u] - p_matrix[:, topo.edge_v]


@dataclass
class PairedRun:
    """Trace of a discrete process next to its continuous counterpart.

    ``discrete_loads[t]``/``continuous_loads[t]`` are the load vectors at the
    *beginning* of round ``t``; ``errors[t]`` the per-edge rounding error of
    round ``t`` (length ``rounds``).
    """

    discrete_loads: List[np.ndarray]
    continuous_loads: List[np.ndarray]
    errors: List[np.ndarray]

    @property
    def rounds(self) -> int:
        return len(self.errors)

    def deviation(self, t: Optional[int] = None) -> np.ndarray:
        """``x_D(t) - x_C(t)`` (defaults to the final recorded time)."""
        if t is None:
            t = self.rounds
        return self.discrete_loads[t] - self.continuous_loads[t]

    def max_deviation_series(self) -> np.ndarray:
        """``max_k |x_D_k(t) - x_C_k(t)|`` for every recorded ``t``."""
        return np.asarray(
            [
                np.abs(d - c).max()
                for d, c in zip(self.discrete_loads, self.continuous_loads)
            ]
        )


def run_paired(
    process: LoadBalancingProcess,
    initial_load: np.ndarray,
    rounds: int,
) -> PairedRun:
    """Run the discrete process and its independent continuous counterpart.

    The continuous reference starts from the same load vector and evolves by
    its own dynamics (it does *not* see the discrete state); the rounding
    errors are measured against the scheduled flow ``Yhat = C(x_D(t))``
    computed on the discrete state, exactly as in Section III-A.
    """
    if rounds < 0:
        raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
    topo = process.topo
    scheme = process.scheme

    disc_state = process.initial_state(initial_load)
    cont_state = LoadState.initial(topo, np.asarray(initial_load, dtype=np.float64))

    discrete_loads = [disc_state.load.copy()]
    continuous_loads = [cont_state.load.copy()]
    errors: List[np.ndarray] = []

    for _ in range(rounds):
        disc_state, info = process.step(disc_state)
        errors.append(info.errors.copy())
        cont_flows = scheme.scheduled_flows(cont_state)
        cont_load = apply_flows(topo, cont_state.load, cont_flows)
        cont_state = cont_state.advanced(cont_load, cont_flows)
        discrete_loads.append(disc_state.load.copy())
        continuous_loads.append(cont_state.load.copy())

    return PairedRun(
        discrete_loads=discrete_loads,
        continuous_loads=continuous_loads,
        errors=errors,
    )


def lemma2_rhs(
    topo: Topology,
    p_matrices: Sequence[np.ndarray],
    errors: Sequence[np.ndarray],
    t: Optional[int] = None,
) -> np.ndarray:
    """Evaluate the right-hand side of Lemma 2 for every node at time ``t``.

    ``rhs_k = sum_{s=1..t} sum_e e_e(t-s) * (P(s)_{k,u_e} - P(s)_{k,v_e})``.
    Needs ``p_matrices[s]`` for ``s <= t`` and ``errors[0..t-1]``.
    """
    if t is None:
        t = len(errors)
    if t > len(errors) or t > len(p_matrices) - 1:
        raise ConfigurationError(
            f"need p_matrices up to s={t} and {t} error vectors; "
            f"got {len(p_matrices)} matrices / {len(errors)} errors"
        )
    rhs = np.zeros(topo.n, dtype=np.float64)
    for s in range(1, t + 1):
        contrib = edge_contributions(topo, p_matrices[s])  # (n, m)
        rhs += contrib @ errors[t - s]
    return rhs


def check_linearity(
    scheme: ContinuousScheme,
    x1: np.ndarray,
    x2: np.ndarray,
    y1: np.ndarray,
    y2: np.ndarray,
    a: float,
    b: float,
    round_index: int = 1,
) -> float:
    """Max violation of Definition 4 linearity for the given inputs.

    Evaluates ``|A(a x1 + b x2, a y1 + b y2) - (a A(x1,y1) + b A(x2,y2))|``
    where ``A`` is the scheme's flow function at round ``round_index``
    (``round_index >= 1`` so SOS is past its FOS bootstrap round).
    """
    def flows(x, y):
        state = LoadState(load=x, flows=y, round_index=round_index)
        return scheme.scheduled_flows(state)

    lhs = flows(a * x1 + b * x2, a * y1 + b * y2)
    rhs = a * flows(x1, y1) + b * flows(x2, y2)
    return float(np.abs(lhs - rhs).max()) if lhs.size else 0.0
