"""Synchronous-round simulation driver with metric recording.

:class:`Simulator` wraps a :class:`~repro.core.process.LoadBalancingProcess`
and runs it for a number of rounds while

* recording the paper's Section VI metrics each round into a columnar
  :class:`~repro.core.records.RecordTable`,
* tracking the minimum transient load (negative-load analysis, Section V),
* applying an optional :class:`~repro.core.hybrid.SwitchPolicy` that swaps a
  second order scheme for its first order counterpart mid-run (the paper's
  hybrid strategy), and
* supporting early stopping on convergence predicates.

The driver is split into an incremental core (:meth:`Simulator.start`,
:meth:`Simulator.advance`, :meth:`Simulator.finish`) so that engine adapters
(:mod:`repro.engines`) can step replicas round by round through *exactly* the
same code path :meth:`Simulator.run` uses — equivalence by construction, not
by parallel maintenance.

The result object (:class:`SimulationResult`) exposes the metric time series
as zero-copy numpy views of the record table, ready for the benchmark
harness and the series exporters in :mod:`repro.viz.series`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..exceptions import ConfigurationError
from ..graphs.topology import Topology
from .hybrid import NeverSwitch, SwitchPolicy
from .metrics import (
    max_local_difference,
    max_minus_average,
    min_minus_average,
    normalized_potential,
    target_loads,
)
from .process import LoadBalancingProcess
from .records import RecordTable
from .schemes import FirstOrderScheme, SecondOrderScheme
from .state import LoadState

__all__ = ["RoundRecord", "SimulationResult", "Simulator", "SimulationRun"]


@dataclass(frozen=True)
class RoundRecord:
    """Metrics of one recorded round (fields mirror Section VI).

    ``round_traffic`` is the total load moved this round (sum of absolute
    edge flows) — the communication-volume metric under which diffusion
    schemes beat token random walks (Section II-a discussion of [13]).
    """

    round_index: int
    scheme: str
    max_minus_avg: float
    min_minus_avg: float
    max_local_diff: float
    potential_per_node: float
    min_load: float
    min_transient: float
    total_load: float
    round_traffic: float = 0.0


def record_round(
    table: RecordTable,
    topo: Topology,
    state: LoadState,
    targets: np.ndarray,
    scheme_name: str,
    min_transient: float,
    traffic: float,
) -> None:
    """Append one round's Section VI metrics to ``table``.

    Shared by :class:`Simulator` and the reference engine so both record
    bit-identical values for the same state.
    """
    table.append(
        round_index=state.round_index,
        scheme=scheme_name,
        max_minus_avg=max_minus_average(state.load, targets),
        min_minus_avg=min_minus_average(state.load, targets),
        max_local_diff=max_local_difference(topo, state.load),
        potential_per_node=normalized_potential(state.load, targets),
        min_load=float(state.load.min()),
        min_transient=min_transient,
        total_load=state.total_load,
        round_traffic=traffic,
    )


@dataclass
class SimulationResult:
    """Outcome of a :meth:`Simulator.run` call.

    ``table`` holds one row per recorded round (round 0 is the initial
    state) in columnar form; :attr:`records` materialises the same rows as
    :class:`RoundRecord` objects on first access.  ``switched_at`` is the
    round index after which the hybrid policy replaced SOS with FOS
    (``None`` when no switch happened); ``stopped_at`` is the round at which
    an early-stop predicate fired.
    """

    table: RecordTable
    final_state: LoadState
    switched_at: Optional[int] = None
    stopped_at: Optional[int] = None
    loads_history: Optional[List[np.ndarray]] = None
    _records: Optional[List[RoundRecord]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def records(self) -> List[RoundRecord]:
        """Recorded rounds as :class:`RoundRecord` objects (lazily built)."""
        if self._records is None:
            self._records = [RoundRecord(**row) for row in self.table.iter_rows()]
        return self._records

    def series(self, fieldname: str) -> np.ndarray:
        """Column ``fieldname`` of the record table.

        Returns a read-only zero-copy view of the table column, so repeated
        calls are O(1) and always return identical data.
        """
        return self.table.column(fieldname)

    @property
    def rounds(self) -> np.ndarray:
        """Recorded round indices."""
        return self.table.column("round_index")

    @property
    def min_transient_overall(self) -> float:
        """Most negative transient load seen anywhere in the run."""
        if len(self.table) == 0:
            return 0.0
        return float(self.table.column("min_transient").min())

    def first_round_below(self, fieldname: str, threshold: float) -> Optional[int]:
        """First recorded round where ``fieldname`` drops to <= threshold."""
        values = self.table.column(fieldname)
        hits = np.nonzero(values <= threshold)[0]
        if hits.size == 0:
            return None
        return int(self.table.column("round_index")[hits[0]])


@dataclass
class SimulationRun:
    """Mutable in-flight state of one simulation (see :meth:`Simulator.start`)."""

    state: LoadState
    targets: np.ndarray
    table: RecordTable
    loads_history: Optional[List[np.ndarray]]
    switched_at: Optional[int] = None
    stopped_at: Optional[int] = None
    # Terminal values of the *last executed* step, so the forced terminal
    # record reports the final round's own transient/traffic.
    last_min_transient: float = 0.0
    last_traffic: float = 0.0


class Simulator:
    """Drives a process for many rounds with recording and hybrid switching.

    Parameters
    ----------
    process:
        The (discrete or continuous) process to run.
    switch_policy:
        Optional hybrid policy; when it fires and the active scheme is a
        :class:`SecondOrderScheme`, the simulator swaps in a
        :class:`FirstOrderScheme` over the same topology/speeds/alphas
        (every node "synchronously switches to first order scheme").
    record_every:
        Record metrics every this many rounds (1 = every round).
    keep_loads:
        Also keep a copy of the full load vector at every recorded round
        (needed by the eigen-coefficient analysis and the renderers; costs
        ``O(n)`` memory per record).
    targets:
        Balanced target vector; computed from the total load and speeds when
        omitted.
    """

    def __init__(
        self,
        process: LoadBalancingProcess,
        switch_policy: Optional[SwitchPolicy] = None,
        record_every: int = 1,
        keep_loads: bool = False,
        targets: Optional[np.ndarray] = None,
    ):
        if record_every < 1:
            raise ConfigurationError(f"record_every must be >= 1, got {record_every}")
        self.process = process
        self.switch_policy = switch_policy or NeverSwitch()
        self.record_every = int(record_every)
        self.keep_loads = bool(keep_loads)
        self._targets = targets

    # ------------------------------------------------------------------
    # Incremental core
    # ------------------------------------------------------------------
    def start(self, initial_load: np.ndarray, rounds_hint: int = 0) -> SimulationRun:
        """Initialise a run and record round 0; returns the mutable handle."""
        state = self.process.initial_state(initial_load)
        targets = self._targets
        if targets is None:
            targets = target_loads(state.total_load, self.process.speeds)
        self.switch_policy.reset()
        capacity = max(rounds_hint // self.record_every + 2, 2)
        run = SimulationRun(
            state=state,
            targets=targets,
            table=RecordTable(capacity),
            loads_history=[] if self.keep_loads else None,
            last_min_transient=float(state.load.min()),
            last_traffic=0.0,
        )
        self._record(run)
        return run

    def advance(
        self,
        run: SimulationRun,
        stop_when: Optional[Callable[[Topology, LoadState], bool]] = None,
    ) -> bool:
        """Execute one round; returns False when an early stop fired."""
        topo = self.process.topo
        state, info = self.process.step(run.state)
        run.state = state
        run.last_min_transient = info.min_transient
        run.last_traffic = float(np.abs(info.actual).sum())
        if state.round_index % self.record_every == 0:
            self._record(run)
        if run.switched_at is None and self.switch_policy.should_switch(topo, state):
            if isinstance(self.process.scheme, SecondOrderScheme):
                self._swap_to_fos()
                run.switched_at = state.round_index
        if stop_when is not None and stop_when(topo, state):
            run.stopped_at = state.round_index
            return False
        return True

    def finish(self, run: SimulationRun) -> SimulationResult:
        """Seal a run: force a terminal record and build the result."""
        if run.table.column("round_index")[-1] != run.state.round_index:
            # Make sure the terminal state is present in the series, carrying
            # the *final* step's transient/traffic (not the previous record's).
            self._record(run)
        return SimulationResult(
            table=run.table,
            final_state=run.state,
            switched_at=run.switched_at,
            stopped_at=run.stopped_at,
            loads_history=run.loads_history,
        )

    def _record(self, run: SimulationRun) -> None:
        record_round(
            run.table,
            self.process.topo,
            run.state,
            run.targets,
            self.process.scheme.name,
            run.last_min_transient,
            run.last_traffic,
        )
        if run.loads_history is not None:
            run.loads_history.append(run.state.load.copy())

    # ------------------------------------------------------------------
    def run(
        self,
        initial_load: np.ndarray,
        rounds: int,
        stop_when: Optional[Callable[[Topology, LoadState], bool]] = None,
    ) -> SimulationResult:
        """Run up to ``rounds`` rounds; return the recorded time series.

        ``stop_when(topo, state)`` is evaluated after each round and ends the
        run early when it returns True (the final round is always recorded).
        """
        if rounds < 0:
            raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
        run = self.start(initial_load, rounds_hint=rounds)
        for _ in range(rounds):
            if not self.advance(run, stop_when):
                break
        return self.finish(run)

    # ------------------------------------------------------------------
    def _swap_to_fos(self) -> None:
        """Replace the active SOS with FOS on the same substrate."""
        old = self.process.scheme
        self.process.scheme = FirstOrderScheme(
            old.topo, speeds=old.speeds, alphas=old.alphas
        )
