"""Synchronous-round simulation driver with metric recording.

:class:`Simulator` wraps a :class:`~repro.core.process.LoadBalancingProcess`
and runs it for a number of rounds while

* recording the paper's Section VI metrics each round (:class:`RoundRecord`),
* tracking the minimum transient load (negative-load analysis, Section V),
* applying an optional :class:`~repro.core.hybrid.SwitchPolicy` that swaps a
  second order scheme for its first order counterpart mid-run (the paper's
  hybrid strategy), and
* supporting early stopping on convergence predicates.

The result object (:class:`SimulationResult`) carries the full metric time
series as plain numpy arrays ready for the benchmark harness and the series
exporters in :mod:`repro.viz.series`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..graphs.topology import Topology
from .hybrid import NeverSwitch, SwitchPolicy
from .metrics import (
    max_local_difference,
    max_minus_average,
    min_minus_average,
    normalized_potential,
    target_loads,
)
from .process import LoadBalancingProcess
from .schemes import FirstOrderScheme, SecondOrderScheme
from .state import LoadState

__all__ = ["RoundRecord", "SimulationResult", "Simulator"]


@dataclass(frozen=True)
class RoundRecord:
    """Metrics of one recorded round (fields mirror Section VI).

    ``round_traffic`` is the total load moved this round (sum of absolute
    edge flows) — the communication-volume metric under which diffusion
    schemes beat token random walks (Section II-a discussion of [13]).
    """

    round_index: int
    scheme: str
    max_minus_avg: float
    min_minus_avg: float
    max_local_diff: float
    potential_per_node: float
    min_load: float
    min_transient: float
    total_load: float
    round_traffic: float = 0.0


@dataclass
class SimulationResult:
    """Outcome of a :meth:`Simulator.run` call.

    ``records`` holds one :class:`RoundRecord` per recorded round (round 0 is
    the initial state).  ``switched_at`` is the round index after which the
    hybrid policy replaced SOS with FOS (``None`` when no switch happened);
    ``stopped_at`` is the round at which an early-stop predicate fired.
    """

    records: List[RoundRecord]
    final_state: LoadState
    switched_at: Optional[int] = None
    stopped_at: Optional[int] = None
    loads_history: Optional[List[np.ndarray]] = None

    def series(self, fieldname: str) -> np.ndarray:
        """Column ``fieldname`` of the record table as a float array."""
        return np.asarray([getattr(r, fieldname) for r in self.records], dtype=np.float64)

    @property
    def rounds(self) -> np.ndarray:
        """Recorded round indices."""
        return np.asarray([r.round_index for r in self.records], dtype=np.int64)

    @property
    def min_transient_overall(self) -> float:
        """Most negative transient load seen anywhere in the run."""
        if not self.records:
            return 0.0
        return float(min(r.min_transient for r in self.records))

    def first_round_below(self, fieldname: str, threshold: float) -> Optional[int]:
        """First recorded round where ``fieldname`` drops to <= threshold."""
        for rec in self.records:
            if getattr(rec, fieldname) <= threshold:
                return rec.round_index
        return None


class Simulator:
    """Drives a process for many rounds with recording and hybrid switching.

    Parameters
    ----------
    process:
        The (discrete or continuous) process to run.
    switch_policy:
        Optional hybrid policy; when it fires and the active scheme is a
        :class:`SecondOrderScheme`, the simulator swaps in a
        :class:`FirstOrderScheme` over the same topology/speeds/alphas
        (every node "synchronously switches to first order scheme").
    record_every:
        Record metrics every this many rounds (1 = every round).
    keep_loads:
        Also keep a copy of the full load vector at every recorded round
        (needed by the eigen-coefficient analysis and the renderers; costs
        ``O(n)`` memory per record).
    targets:
        Balanced target vector; computed from the total load and speeds when
        omitted.
    """

    def __init__(
        self,
        process: LoadBalancingProcess,
        switch_policy: Optional[SwitchPolicy] = None,
        record_every: int = 1,
        keep_loads: bool = False,
        targets: Optional[np.ndarray] = None,
    ):
        if record_every < 1:
            raise ConfigurationError(f"record_every must be >= 1, got {record_every}")
        self.process = process
        self.switch_policy = switch_policy or NeverSwitch()
        self.record_every = int(record_every)
        self.keep_loads = bool(keep_loads)
        self._targets = targets

    # ------------------------------------------------------------------
    def run(
        self,
        initial_load: np.ndarray,
        rounds: int,
        stop_when: Optional[Callable[[Topology, LoadState], bool]] = None,
    ) -> SimulationResult:
        """Run up to ``rounds`` rounds; return the recorded time series.

        ``stop_when(topo, state)`` is evaluated after each round and ends the
        run early when it returns True (the final round is always recorded).
        """
        if rounds < 0:
            raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
        topo = self.process.topo
        state = self.process.initial_state(initial_load)
        targets = self._targets
        if targets is None:
            targets = target_loads(state.total_load, self.process.speeds)
        self.switch_policy.reset()

        records: List[RoundRecord] = []
        loads_history: Optional[List[np.ndarray]] = [] if self.keep_loads else None
        switched_at: Optional[int] = None
        stopped_at: Optional[int] = None

        def record(st: LoadState, min_transient: float, traffic: float) -> None:
            records.append(
                RoundRecord(
                    round_index=st.round_index,
                    scheme=self.process.scheme.name,
                    max_minus_avg=max_minus_average(st.load, targets),
                    min_minus_avg=min_minus_average(st.load, targets),
                    max_local_diff=max_local_difference(topo, st.load),
                    potential_per_node=normalized_potential(st.load, targets),
                    min_load=float(st.load.min()),
                    min_transient=min_transient,
                    total_load=st.total_load,
                    round_traffic=traffic,
                )
            )
            if loads_history is not None:
                loads_history.append(st.load.copy())

        record(state, min_transient=float(state.load.min()), traffic=0.0)

        for _ in range(rounds):
            state, info = self.process.step(state)
            if state.round_index % self.record_every == 0:
                record(
                    state,
                    info.min_transient,
                    traffic=float(np.abs(info.actual).sum()),
                )
            if switched_at is None and self.switch_policy.should_switch(topo, state):
                if isinstance(self.process.scheme, SecondOrderScheme):
                    self._swap_to_fos()
                    switched_at = state.round_index
            if stop_when is not None and stop_when(topo, state):
                stopped_at = state.round_index
                break

        if records[-1].round_index != state.round_index:
            # Make sure the terminal state is present in the series.
            record(
                state,
                min_transient=records[-1].min_transient,
                traffic=records[-1].round_traffic,
            )

        return SimulationResult(
            records=records,
            final_state=state,
            switched_at=switched_at,
            stopped_at=stopped_at,
            loads_history=loads_history,
        )

    # ------------------------------------------------------------------
    def _swap_to_fos(self) -> None:
        """Replace the active SOS with FOS on the same substrate."""
        old = self.process.scheme
        self.process.scheme = FirstOrderScheme(
            old.topo, speeds=old.speeds, alphas=old.alphas
        )
