"""Discrete/continuous process wrapper: scheme + rounding = one step.

:class:`LoadBalancingProcess` pairs a continuous scheme ``C`` with a rounding
scheme ``R`` and produces the discrete process ``D = R(C)`` of Definition 1.
Each :meth:`step` computes the continuous scheduled flow
``Yhat = C(x_D(t))``, rounds it, applies it, and reports both so callers can
reconstruct the rounding errors ``e = Yhat - y_D`` that drive the paper's
deviation analysis (Lemma 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import SimulationError
from .rounding import IdentityRounding, RoundingScheme, make_rounding
from .schemes import ContinuousScheme
from .state import LoadState, apply_flows, transient_loads

__all__ = ["StepInfo", "LoadBalancingProcess"]


@dataclass(frozen=True)
class StepInfo:
    """Everything that happened in one synchronous round.

    Attributes
    ----------
    scheduled:
        The continuous scheduled flow ``Yhat`` (per edge, oriented).
    actual:
        The flow actually sent after rounding.
    errors:
        The per-edge rounding error ``e = scheduled - actual``.
    min_transient:
        Minimum of the transient loads ``x̆`` (after sending, before
        receiving) — negative values are the paper's "negative load" events.
    """

    scheduled: np.ndarray
    actual: np.ndarray
    errors: np.ndarray
    min_transient: float


class LoadBalancingProcess:
    """A runnable discrete (or continuous) load balancing process.

    Parameters
    ----------
    scheme:
        The continuous scheme ``C`` (:class:`FirstOrderScheme` or
        :class:`SecondOrderScheme`).
    rounding:
        Rounding scheme ``R`` or its key string (default: ``"identity"`` —
        the continuous process itself).
    rng:
        Random generator threaded into randomized roundings; a fresh default
        generator is created when omitted.
    """

    def __init__(
        self,
        scheme: ContinuousScheme,
        rounding=None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.scheme = scheme
        self.rounding: RoundingScheme = (
            IdentityRounding() if rounding is None else make_rounding(rounding)
        )
        self.rng = rng or np.random.default_rng()

    @property
    def topo(self):
        return self.scheme.topo

    @property
    def speeds(self) -> np.ndarray:
        return self.scheme.speeds

    @property
    def is_discrete(self) -> bool:
        """Whether flows are integral (any rounding other than identity)."""
        return not isinstance(self.rounding, IdentityRounding)

    def initial_state(self, load: np.ndarray) -> LoadState:
        """Round-zero state for the given initial load vector."""
        return LoadState.initial(self.topo, load)

    def step(self, state: LoadState) -> tuple:
        """Advance one synchronous round.

        Returns ``(new_state, StepInfo)``.  Total load is conserved exactly
        (up to float round-off for continuous flows); a violation raises
        :class:`SimulationError` since it indicates a broken rounding scheme.
        """
        scheduled = self.scheme.scheduled_flows(state)
        actual = self.rounding.round_flows(self.topo, scheduled, self.rng)
        new_load = apply_flows(self.topo, state.load, actual)
        min_transient = float(transient_loads(self.topo, state.load, actual).min())
        if abs(new_load.sum() - state.load.sum()) > 1e-6 * max(1.0, abs(state.load.sum())):
            raise SimulationError(
                f"load not conserved in round {state.round_index}: "
                f"{state.load.sum()} -> {new_load.sum()}"
            )
        info = StepInfo(
            scheduled=scheduled,
            actual=actual,
            errors=scheduled - actual,
            min_transient=min_transient,
        )
        return state.advanced(new_load, actual), info

    def run(self, load: np.ndarray, rounds: int) -> LoadState:
        """Run ``rounds`` rounds from the given initial load; return the state.

        For metric collection and switch policies use
        :class:`repro.core.simulator.Simulator` instead.
        """
        state = self.initial_state(load)
        for _ in range(rounds):
            state, _ = self.step(state)
        return state

    def __repr__(self) -> str:
        return (
            f"LoadBalancingProcess(scheme={self.scheme!r}, "
            f"rounding={self.rounding!r})"
        )
