"""Spectral toolkit: ``lambda``, ``beta_opt``, analytic spectra and ``Q(t)``.

The convergence of both schemes is governed by ``lambda``, the second largest
eigenvalue *in magnitude* of the diffusion matrix ``M``; the optimal SOS
parameter is ``beta_opt = 2 / (1 + sqrt(1 - lambda^2))`` (Section II-b of the
paper).  For the structured graphs of Table I the full spectrum of ``M`` is
known in closed form, which lets us reproduce the table's beta values at the
paper's original scale (torus ``1000 x 1000``, hypercube ``2^20``) without a
million-node eigensolve; the closed forms are cross-checked against dense
solvers in the test-suite.

This module also implements the SOS error-propagation matrices ``Q(t)`` of
Section IV,

    ``Q(0) = I``, ``Q(1) = beta M``,
    ``Q(t) = beta M Q(t-1) + (1 - beta) Q(t-2)``,

and the closed-form eigenvalues ``gamma_j(t)`` of Lemma 7.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np
import scipy.linalg
import scipy.sparse as sp
import scipy.sparse.linalg

from ..exceptions import ConfigurationError, SchemeError
from ..graphs.topology import Topology
from .matrices import symmetrized_matrix

__all__ = [
    "eigenvalues",
    "second_largest_eigenvalue",
    "beta_opt",
    "fwht",
    "torus_lambda",
    "torus_spectrum",
    "torus_rfft_eigenvalues",
    "hypercube_lambda",
    "hypercube_spectrum",
    "hypercube_wht_eigenvalues",
    "cycle_lambda",
    "complete_lambda",
    "q_matrices",
    "q_matrix_at",
    "gamma_closed_form",
    "spectral_gap",
]

_DENSE_LIMIT = 4000


def eigenvalues(
    topo: Topology,
    speeds: Optional[np.ndarray] = None,
    alphas=None,
) -> np.ndarray:
    """All eigenvalues of ``M`` in ascending order (dense solve).

    Uses the symmetric similarity transform so that ``scipy.linalg.eigh``
    applies even in the heterogeneous case.  Refuses graphs larger than
    ``4000`` nodes — use :func:`second_largest_eigenvalue`, which switches to
    a sparse solver, or the analytic spectra for structured graphs.
    """
    if topo.n > _DENSE_LIMIT:
        raise ConfigurationError(
            f"dense spectrum for n={topo.n} would be too expensive; "
            "use second_largest_eigenvalue() or an analytic spectrum"
        )
    sym, _ = symmetrized_matrix(topo, speeds, alphas)
    return scipy.linalg.eigvalsh(sym)


def second_largest_eigenvalue(
    topo: Topology,
    speeds: Optional[np.ndarray] = None,
    alphas=None,
    method: str = "auto",
) -> float:
    """``lambda``: the second largest eigenvalue of ``M`` in magnitude.

    Parameters
    ----------
    method:
        ``"dense"`` forces a full symmetric eigensolve, ``"sparse"`` uses
        Lanczos (``eigsh``) on the symmetrised matrix, ``"auto"`` picks dense
        below ~4000 nodes.
    """
    if method not in ("auto", "dense", "sparse"):
        raise ConfigurationError(f"unknown method {method!r}")
    if method == "dense" or (method == "auto" and topo.n <= _DENSE_LIMIT):
        vals = eigenvalues(topo, speeds, alphas)
        # Largest eigenvalue is 1 (simple, for connected graphs); lambda is
        # the largest magnitude among the rest.
        idx = int(np.argmax(vals))
        rest = np.delete(vals, idx)
        return float(np.abs(rest).max()) if rest.size else 0.0
    sym, _ = symmetrized_matrix(topo, speeds, alphas, sparse=True)
    k = min(3, topo.n - 1)
    top = scipy.sparse.linalg.eigsh(sym, k=k, which="LA", return_eigenvectors=False)
    bottom = scipy.sparse.linalg.eigsh(sym, k=1, which="SA", return_eigenvectors=False)
    top_sorted = np.sort(top)[::-1]
    second_largest = top_sorted[1] if top_sorted.size > 1 else 0.0
    return float(max(abs(second_largest), abs(bottom[0])))


def beta_opt(lam: float) -> float:
    """Optimal SOS parameter ``beta = 2 / (1 + sqrt(1 - lambda^2))``.

    ``lam`` must lie in ``[0, 1)``; the result lies in ``[1, 2)``.
    """
    if not 0.0 <= lam < 1.0:
        raise SchemeError(f"lambda must be in [0, 1), got {lam}")
    return 2.0 / (1.0 + math.sqrt(1.0 - lam * lam))


def spectral_gap(lam: float) -> float:
    """The eigenvalue gap ``1 - lambda`` used throughout the paper's bounds."""
    if not 0.0 <= lam <= 1.0:
        raise SchemeError(f"lambda must be in [0, 1], got {lam}")
    return 1.0 - lam


# ----------------------------------------------------------------------
# Analytic spectra for structured graphs (alpha = 1/(d+1), homogeneous)
# ----------------------------------------------------------------------

def torus_spectrum(shape: Sequence[int]) -> np.ndarray:
    """All eigenvalues of ``M`` on a ``k``-dim torus with paper-default alpha.

    For side lengths ``(n_1, ..., n_k)`` (each ``>= 3`` so the torus is
    ``2k``-regular) and ``alpha = 1/(2k + 1)`` the eigenvalues are

        ``mu(a_1..a_k) = (1 + 2 sum_r cos(2 pi a_r / n_r)) / (2k + 1)``.

    Returned in ascending order.  Sides of length 1 or 2 change the degree
    and are rejected — use the numeric solver for those shapes.
    """
    shape = tuple(int(s) for s in shape)
    if any(s < 3 for s in shape):
        raise ConfigurationError(
            f"analytic torus spectrum needs all sides >= 3, got {shape}"
        )
    k = len(shape)
    denom = 2 * k + 1
    grids = np.meshgrid(
        *[2.0 * np.cos(2.0 * np.pi * np.arange(s) / s) for s in shape],
        indexing="ij",
    )
    mu = (1.0 + sum(grids)) / denom
    return np.sort(mu.ravel())


def torus_rfft_eigenvalues(shape: Sequence[int], alpha: float) -> np.ndarray:
    """Eigenvalues of ``M = I - alpha L`` on a torus, in ``rfftn`` mode layout.

    The diffusion matrix of a full-wrap torus is diagonalised by the
    ``k``-dimensional DFT: the mode with frequencies ``(a_1, ..., a_k)`` has
    eigenvalue ``1 - alpha * (2k - 2 sum_r cos(2 pi a_r / n_r))``.  This
    returns those eigenvalues as a *real* array shaped like the output of
    ``numpy.fft.rfftn`` on a ``shape``-shaped signal — full frequency range
    on every axis except the last, which keeps only the non-negative half —
    so continuous diffusion trajectories can be advanced per mode:
    ``rfftn`` the load grid once, multiply the coefficients by the scalar
    recurrence of each mode, ``irfftn`` back whenever node-space values are
    needed.  Sides of 1 or 2 change the degree structure and are rejected.
    """
    shape = tuple(int(s) for s in shape)
    if not shape or any(s < 3 for s in shape):
        raise ConfigurationError(
            f"torus Fourier eigenvalues need all sides >= 3, got {shape}"
        )
    k = len(shape)
    axes = [2.0 * np.cos(2.0 * np.pi * np.arange(s) / s) for s in shape]
    axes[-1] = axes[-1][: shape[-1] // 2 + 1]
    grids = np.meshgrid(*axes, indexing="ij")
    return 1.0 - alpha * (2.0 * k - sum(grids))


def torus_lambda(shape: Sequence[int]) -> float:
    """``lambda`` for a torus with paper-default alphas (closed form).

    The second largest eigenvalue comes from perturbing a single frequency by
    one: ``(2k - 1 + 2 cos(2 pi / max side)) / (2k + 1)``.  Negative
    eigenvalues are bounded away from ``-1`` because of the lazy self weight,
    so the magnitude maximum is always this positive eigenvalue for
    sides >= 3.
    """
    shape = tuple(int(s) for s in shape)
    if any(s < 3 for s in shape):
        raise ConfigurationError(
            f"analytic torus lambda needs all sides >= 3, got {shape}"
        )
    k = len(shape)
    denom = 2 * k + 1
    best_pos = (2 * k - 1 + 2.0 * math.cos(2.0 * math.pi / max(shape))) / denom
    # Most negative eigenvalue: all cosines at their minimum.
    most_neg = (1.0 + sum(2.0 * math.cos(2.0 * math.pi * (s // 2) / s) for s in shape)) / denom
    return float(max(best_pos, abs(most_neg)))


def hypercube_spectrum(dimension: int) -> np.ndarray:
    """Eigenvalues of ``M`` on the ``k``-cube with ``alpha = 1/(k+1)``.

    Eigenvalue ``1 - 2 j / (k + 1)`` has multiplicity ``binom(k, j)`` for
    ``j = 0 .. k``.  Returned ascending with multiplicities expanded.
    """
    if dimension < 1:
        raise ConfigurationError(f"dimension must be >= 1, got {dimension}")
    k = dimension
    vals: List[float] = []
    for j in range(k + 1):
        vals.extend([1.0 - 2.0 * j / (k + 1)] * math.comb(k, j))
    return np.sort(np.asarray(vals))


def fwht(x: np.ndarray) -> np.ndarray:
    """Unnormalised fast Walsh–Hadamard transform along axis 0.

    ``x`` must have ``2**k`` rows (any trailing shape); a new array of the
    same shape and dtype comes back in the *natural* (Hadamard) ordering,
    where coefficient ``s`` pairs node ``i`` with the parity character
    ``(-1)**popcount(s & i)`` — so a hypercube eigenmode's index maps to
    its Laplacian eigenvalue through ``popcount`` alone.  The transform is
    an involution up to scale: ``fwht(fwht(x)) == n * x``.

    The butterflies run as ``log2(n)`` whole-array strided passes (no
    per-row Python loop), so an ``(n, B)`` batch transforms at numpy
    speed.
    """
    n = x.shape[0]
    if n < 1 or n & (n - 1):
        raise ConfigurationError(
            f"fwht needs a power-of-two number of rows, got {n}"
        )
    out = np.ascontiguousarray(x).copy()
    h = 1
    while h < n:
        view = out.reshape(n // (2 * h), 2, h, -1)
        top = view[:, 0].copy()
        np.add(top, view[:, 1], out=view[:, 0])
        np.subtract(top, view[:, 1], out=view[:, 1])
        h *= 2
    return out


def hypercube_wht_eigenvalues(dimension: int, alpha: float) -> np.ndarray:
    """Eigenvalues of ``M = I - alpha L`` on the ``k``-cube, in FWHT layout.

    The Walsh character ``chi_s(i) = (-1)**popcount(s & i)`` is an
    eigenvector of every bit-flip adjacency, so the cube's Laplacian has
    ``L chi_s = 2 popcount(s) chi_s`` and mode ``s`` of the diffusion
    matrix carries eigenvalue ``1 - 2 alpha popcount(s)``.  Returned as a
    length-``2**k`` array indexed exactly like the coefficients
    :func:`fwht` produces, so continuous diffusion trajectories advance
    per mode: one forward FWHT, a scalar recurrence per round, one inverse
    FWHT (``fwht(.)/n``) whenever node-space values are needed.
    """
    if dimension < 0:
        raise ConfigurationError(f"dimension must be >= 0, got {dimension}")
    n = 1 << dimension
    idx = np.arange(n, dtype=np.int64)
    popcount = np.zeros(n, dtype=np.int64)
    while idx.any():
        popcount += idx & 1
        idx >>= 1
    return 1.0 - 2.0 * alpha * popcount


def hypercube_lambda(dimension: int) -> float:
    """``lambda = 1 - 2/(k+1)`` for the ``k``-cube (Section VI-B)."""
    if dimension < 1:
        raise ConfigurationError(f"dimension must be >= 1, got {dimension}")
    k = dimension
    return float(max(1.0 - 2.0 / (k + 1), abs(1.0 - 2.0 * k / (k + 1))))


def cycle_lambda(n: int) -> float:
    """``lambda`` for the cycle ``C_n`` with ``alpha = 1/3``.

    Eigenvalues are ``(1 + 2 cos(2 pi a / n)) / 3``.
    """
    if n < 3:
        raise ConfigurationError(f"cycle needs n >= 3, got {n}")
    best_pos = (1.0 + 2.0 * math.cos(2.0 * math.pi / n)) / 3.0
    most_neg = (1.0 + 2.0 * math.cos(2.0 * math.pi * (n // 2) / n)) / 3.0
    return float(max(best_pos, abs(most_neg)))


def complete_lambda(n: int) -> float:
    """``lambda = 0`` for ``K_n`` with ``alpha = 1/n``: one-round balancing."""
    if n < 2:
        raise ConfigurationError(f"complete graph needs n >= 2, got {n}")
    return 0.0


# ----------------------------------------------------------------------
# SOS error-propagation matrices Q(t) and their spectrum (Lemma 7)
# ----------------------------------------------------------------------

def q_matrices(m: np.ndarray, beta: float, t_max: int) -> Iterator[np.ndarray]:
    """Yield ``Q(0), Q(1), ..., Q(t_max)`` (equation (20) of the paper)."""
    if not 0.0 < beta < 2.0:
        raise SchemeError(f"beta must be in (0, 2), got {beta}")
    n = m.shape[0]
    q_prev = np.eye(n)
    yield q_prev
    if t_max == 0:
        return
    q_cur = beta * m
    yield q_cur
    for _ in range(2, t_max + 1):
        q_next = beta * (m @ q_cur) + (1.0 - beta) * q_prev
        q_prev, q_cur = q_cur, q_next
        yield q_cur


def q_matrix_at(m: np.ndarray, beta: float, t: int) -> np.ndarray:
    """``Q(t)`` for a single ``t`` (runs the recursion from 0)."""
    if t < 0:
        raise ConfigurationError(f"t must be >= 0, got {t}")
    result = None
    for result in q_matrices(m, beta, t):
        pass
    assert result is not None
    return result


def gamma_closed_form(lambda_j: float, lam: float, beta: float, t: int) -> float:
    """Closed-form eigenvalue ``gamma_j(t)`` of ``Q(t)`` (Lemma 7).

    ``lambda_j`` is the eigenvalue of ``M`` the mode corresponds to, ``lam``
    the second largest eigenvalue used to pick ``beta = beta_opt(lam)``.

    The three regimes of the lemma::

        lambda_j = 1          -> (1 - (beta-1)^(t+1)) / (2 - beta)
        |lambda_j| = lam      -> (sqrt(beta-1))^t * (t + 1)
        |lambda_j| < lam      -> r^t (cos(theta t) + sin(theta t) *
                                 lambda_j / sqrt(lam^2 - lambda_j^2)),
                                 r = sqrt(beta-1), cos(theta) = lambda_j/lam.

    For ``|lambda_j| = lam`` with ``lambda_j < 0`` the magnitude matches the
    positive case up to sign ``(-1)^t``; this function returns the *signed*
    value obtained by solving the recursion directly, which the tests compare
    against the numerically iterated recurrence.
    """
    if not 0.0 < beta < 2.0:
        raise SchemeError(f"beta must be in (0, 2), got {beta}")
    if t == 0:
        return 1.0
    if t == 1:
        return beta * lambda_j
    # Solve the scalar recursion g(t) = beta*lambda_j*g(t-1) + (1-beta)*g(t-2)
    # via its characteristic roots; fall back to iteration when the closed
    # form is numerically degenerate.
    disc = (beta * lambda_j) ** 2 - 4.0 * (beta - 1.0)
    if abs(disc) < 1e-13:
        # Double root: g(t) = r^t (1 + c t) with r = beta*lambda_j/2.
        r = beta * lambda_j / 2.0
        if abs(r) < 1e-300:
            return 0.0
        # g(0)=1 -> a=1; g(1)=beta*lambda_j=2r -> (1+c) r = 2r -> c=1.
        return (r ** t) * (1.0 + t)
    if disc > 0:
        sqrt_disc = math.sqrt(disc)
        r1 = (beta * lambda_j + sqrt_disc) / 2.0
        r2 = (beta * lambda_j - sqrt_disc) / 2.0
        # g(t) = a r1^t + b r2^t with a + b = 1, a r1 + b r2 = beta*lambda_j.
        a = (beta * lambda_j - r2) / (r1 - r2)
        b = 1.0 - a
        return a * r1 ** t + b * r2 ** t
    # Complex roots: r e^{±i theta} with r = sqrt(beta-1).
    r = math.sqrt(beta - 1.0)
    theta = math.atan2(math.sqrt(-disc) / 2.0, beta * lambda_j / 2.0)
    sin_theta = math.sin(theta)
    if abs(sin_theta) < 1e-300:
        return (r ** t) * math.cos(theta * t)
    # g(t) = r^t (cos(theta t) + c sin(theta t)); match g(1).
    c = (beta * lambda_j / r - math.cos(theta)) / sin_theta
    return (r ** t) * (math.cos(theta * t) + c * math.sin(theta * t))
