"""Torus graph generators.

The paper's main experimental platform is the two-dimensional torus (sizes
``1000 x 1000`` and ``100 x 100``, Table I).  This module provides general
``k``-dimensional tori plus helpers to map between node ids and grid
coordinates, which the visualisation code (Figures 9-11) relies on.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..exceptions import TopologyError
from .topology import Topology

__all__ = ["torus_2d", "torus_nd", "grid_2d", "torus_coordinates", "torus_node_id"]


def torus_2d(
    rows: int, cols: int, link_latency=None, link_bandwidth=None
) -> Topology:
    """Two-dimensional torus with ``rows x cols`` nodes.

    Node ``(r, c)`` has id ``r * cols + c`` and is adjacent to its four
    neighbours ``(r±1, c)`` and ``(r, c±1)`` with wrap-around.  Dimensions of
    size 1 contribute no edges and a dimension of size 2 contributes a single
    (not doubled) edge.  ``link_latency``/``link_bandwidth`` are stamped on
    the result via :meth:`~repro.graphs.topology.Topology.stamp_link_attrs`.
    """
    return torus_nd(
        (rows, cols),
        name=f"torus-{rows}x{cols}",
        link_latency=link_latency,
        link_bandwidth=link_bandwidth,
    )


def torus_nd(
    shape: Sequence[int],
    name: str = "",
    link_latency=None,
    link_bandwidth=None,
) -> Topology:
    """A ``k``-dimensional torus with the given side lengths.

    Parameters
    ----------
    shape:
        Side length per dimension; every entry must be >= 1.
    name:
        Optional topology name; a descriptive default is derived from shape.
    link_latency, link_bandwidth:
        Optional per-edge link attributes (scalar or ``(m_edges,)``) stamped
        on the result for the async engine.
    """
    shape = tuple(int(s) for s in shape)
    if not shape or any(s < 1 for s in shape):
        raise TopologyError(f"invalid torus shape {shape}")
    n = int(np.prod(shape))
    ids = np.arange(n).reshape(shape)
    edges = []
    for axis, side in enumerate(shape):
        if side == 1:
            continue
        rolled = np.roll(ids, -1, axis=axis)
        u = ids.ravel()
        v = rolled.ravel()
        if side == 2:
            # Rolling by one in a dimension of size 2 visits each edge twice.
            keep = u < v
            u, v = u[keep], v[keep]
        edges.append(np.stack([u, v], axis=1))
    if edges:
        edge_array = np.concatenate(edges, axis=0)
    else:
        edge_array = np.empty((0, 2), dtype=np.int64)
    label = name or ("torus-" + "x".join(str(s) for s in shape))
    topo = Topology(n, edge_array, name=label)
    if all(s >= 3 for s in shape):
        # Full-wrap torus: every dimension contributes two distinct edges per
        # node, so the analytic Fourier spectrum applies (sides of 1 or 2
        # change the degree structure and are left unhinted).
        topo.grid_shape = shape
    return topo.stamp_link_attrs(link_latency, link_bandwidth)


def grid_2d(rows: int, cols: int) -> Topology:
    """Two-dimensional grid (mesh) *without* wrap-around edges."""
    if rows < 1 or cols < 1:
        raise TopologyError(f"invalid grid shape ({rows}, {cols})")
    ids = np.arange(rows * cols).reshape(rows, cols)
    edges = []
    if cols > 1:
        edges.append(np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()], axis=1))
    if rows > 1:
        edges.append(np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()], axis=1))
    edge_array = (
        np.concatenate(edges, axis=0) if edges else np.empty((0, 2), dtype=np.int64)
    )
    return Topology(rows * cols, edge_array, name=f"grid-{rows}x{cols}")


def torus_coordinates(node: int, shape: Sequence[int]) -> Tuple[int, ...]:
    """Grid coordinates of ``node`` in a torus of the given ``shape``."""
    return tuple(int(c) for c in np.unravel_index(node, tuple(shape)))


def torus_node_id(coords: Sequence[int], shape: Sequence[int]) -> int:
    """Node id of grid ``coords`` in a torus of the given ``shape``."""
    shape = tuple(shape)
    wrapped = tuple(int(c) % s for c, s in zip(coords, shape))
    return int(np.ravel_multi_index(wrapped, shape))
