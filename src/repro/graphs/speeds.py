"""Speed vectors for heterogeneous networks.

In the paper's heterogeneous model every processor ``i`` has a speed
``s_i >= 1`` (the minimum speed is normalised to 1) and the target load of
node ``i`` is ``m * s_i / s`` with ``s = sum_i s_i``.  This module provides
validated constructors for the speed vectors used across the experiments.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..exceptions import SpeedError

__all__ = [
    "uniform_speeds",
    "two_class_speeds",
    "powerlaw_speeds",
    "geometric_speeds",
    "random_integer_speeds",
    "validate_speeds",
    "normalize_speeds",
]


def validate_speeds(speeds: Sequence[float], n: Optional[int] = None) -> np.ndarray:
    """Validate and return a float64 speed vector.

    Requirements (from the paper's model): length matches ``n`` when given,
    all entries finite and >= 1 (minimum speed is 1).
    """
    arr = np.asarray(speeds, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise SpeedError("speeds must be a non-empty 1-D vector")
    if n is not None and arr.size != n:
        raise SpeedError(f"speed vector has length {arr.size}, expected {n}")
    if not np.all(np.isfinite(arr)):
        raise SpeedError("speeds must be finite")
    if np.any(arr < 1.0 - 1e-12):
        raise SpeedError(f"minimum speed must be >= 1, got {arr.min()}")
    return arr


def normalize_speeds(speeds: Sequence[float]) -> np.ndarray:
    """Rescale a positive vector so that its minimum becomes exactly 1."""
    arr = np.asarray(speeds, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise SpeedError("speeds must be a non-empty 1-D vector")
    if not np.all(np.isfinite(arr)) or np.any(arr <= 0):
        raise SpeedError("speeds must be finite and positive to normalize")
    return arr / arr.min()


def uniform_speeds(n: int) -> np.ndarray:
    """Homogeneous network: all speeds equal to 1."""
    if n < 1:
        raise SpeedError(f"need n >= 1, got {n}")
    return np.ones(n, dtype=np.float64)


def two_class_speeds(n: int, fast_fraction: float = 0.1, fast_speed: float = 8.0,
                     rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """A fraction of "fast" nodes with speed ``fast_speed``, the rest speed 1.

    Models a cluster with a few accelerated machines; the fast node set is
    chosen uniformly at random.
    """
    if n < 1:
        raise SpeedError(f"need n >= 1, got {n}")
    if not 0.0 <= fast_fraction <= 1.0:
        raise SpeedError(f"fast_fraction must be in [0, 1], got {fast_fraction}")
    if fast_speed < 1.0:
        raise SpeedError(f"fast_speed must be >= 1, got {fast_speed}")
    rng = rng or np.random.default_rng()
    speeds = np.ones(n, dtype=np.float64)
    k = int(round(fast_fraction * n))
    if k:
        fast = rng.choice(n, size=k, replace=False)
        speeds[fast] = fast_speed
    return speeds


def powerlaw_speeds(n: int, exponent: float = 2.5, s_max: float = 64.0,
                    rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Pareto-like speeds truncated to ``[1, s_max]``.

    Heavy-tailed speed distributions stress the ``log s_max`` terms in the
    paper's deviation bounds (Theorems 4 and 9).
    """
    if n < 1:
        raise SpeedError(f"need n >= 1, got {n}")
    if exponent <= 1.0:
        raise SpeedError(f"exponent must be > 1, got {exponent}")
    if s_max < 1.0:
        raise SpeedError(f"s_max must be >= 1, got {s_max}")
    rng = rng or np.random.default_rng()
    raw = (1.0 - rng.random(n)) ** (-1.0 / (exponent - 1.0))
    return np.clip(raw, 1.0, s_max)


def geometric_speeds(n: int, levels: int = 4, base: float = 2.0,
                     rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Speeds drawn uniformly from ``{1, base, base^2, ..., base^(levels-1)}``."""
    if n < 1:
        raise SpeedError(f"need n >= 1, got {n}")
    if levels < 1 or base < 1.0:
        raise SpeedError(f"need levels >= 1 and base >= 1, got ({levels}, {base})")
    rng = rng or np.random.default_rng()
    ladder = base ** np.arange(levels, dtype=np.float64)
    return rng.choice(ladder, size=n)


def random_integer_speeds(n: int, s_max: int = 8,
                          rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Integer speeds drawn uniformly from ``{1, ..., s_max}``."""
    if n < 1:
        raise SpeedError(f"need n >= 1, got {n}")
    if s_max < 1:
        raise SpeedError(f"s_max must be >= 1, got {s_max}")
    rng = rng or np.random.default_rng()
    return rng.integers(1, s_max + 1, size=n).astype(np.float64)
