"""Standard small graph families.

These are not part of the paper's Table I but are used throughout the test
suite and the theory-validation benches: cycles and paths have tiny spectral
gaps (slow diffusion), complete graphs balance in one continuous round, stars
exhibit the maximum-degree effects the deviation bounds depend on, and
expanders (here: supercharged random circulants) have constant gaps.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..exceptions import TopologyError
from .topology import Topology

__all__ = [
    "cycle",
    "path",
    "complete",
    "star",
    "complete_bipartite",
    "binary_tree",
    "circulant",
    "lollipop",
    "barbell",
]


def cycle(n: int) -> Topology:
    """Cycle graph ``C_n`` (``n >= 3``)."""
    if n < 3:
        raise TopologyError(f"cycle needs n >= 3, got {n}")
    nodes = np.arange(n, dtype=np.int64)
    return Topology(n, np.stack([nodes, (nodes + 1) % n], axis=1), name=f"cycle-{n}")


def path(n: int) -> Topology:
    """Path graph ``P_n`` (``n >= 2``)."""
    if n < 2:
        raise TopologyError(f"path needs n >= 2, got {n}")
    nodes = np.arange(n - 1, dtype=np.int64)
    return Topology(n, np.stack([nodes, nodes + 1], axis=1), name=f"path-{n}")


def complete(n: int) -> Topology:
    """Complete graph ``K_n`` (``n >= 2``)."""
    if n < 2:
        raise TopologyError(f"complete graph needs n >= 2, got {n}")
    u, v = np.triu_indices(n, k=1)
    return Topology(n, np.stack([u, v], axis=1), name=f"complete-{n}")


def star(n: int) -> Topology:
    """Star graph: node 0 is the hub connected to ``1 .. n-1``."""
    if n < 2:
        raise TopologyError(f"star needs n >= 2, got {n}")
    leaves = np.arange(1, n, dtype=np.int64)
    hub = np.zeros(n - 1, dtype=np.int64)
    return Topology(n, np.stack([hub, leaves], axis=1), name=f"star-{n}")


def complete_bipartite(a: int, b: int) -> Topology:
    """Complete bipartite graph ``K_{a,b}``; left part is ``0 .. a-1``."""
    if a < 1 or b < 1:
        raise TopologyError(f"K_(a,b) needs a, b >= 1, got ({a}, {b})")
    left = np.repeat(np.arange(a, dtype=np.int64), b)
    right = np.tile(np.arange(a, a + b, dtype=np.int64), a)
    return Topology(a + b, np.stack([left, right], axis=1), name=f"kbipartite-{a}x{b}")


def binary_tree(depth: int) -> Topology:
    """Complete binary tree of the given ``depth`` (root only at depth 0)."""
    if depth < 0:
        raise TopologyError(f"depth must be >= 0, got {depth}")
    n = (1 << (depth + 1)) - 1
    if n == 1:
        return Topology(1, [], name="btree-0")
    children = np.arange(1, n, dtype=np.int64)
    parents = (children - 1) // 2
    return Topology(n, np.stack([parents, children], axis=1), name=f"btree-{depth}")


def circulant(n: int, offsets: Sequence[int]) -> Topology:
    """Circulant graph: node ``i`` connects to ``i ± k (mod n)`` per offset.

    With random offsets of size ``Theta(log n)`` these are good expanders and
    serve as the expander family in the ablation benches.
    """
    if n < 3:
        raise TopologyError(f"circulant needs n >= 3, got {n}")
    offs = sorted({int(k) % n for k in offsets} - {0})
    if not offs:
        raise TopologyError("circulant needs at least one non-zero offset")
    nodes = np.arange(n, dtype=np.int64)
    pairs = []
    for k in offs:
        if 2 * k == n:
            half = nodes[: n // 2]
            pairs.append(np.stack([half, half + k], axis=1))
        elif k < n - k:
            pairs.append(np.stack([nodes, (nodes + k) % n], axis=1))
    edge_array = np.concatenate(pairs, axis=0)
    lo = np.minimum(edge_array[:, 0], edge_array[:, 1])
    hi = np.maximum(edge_array[:, 0], edge_array[:, 1])
    uniq = np.unique(np.stack([lo, hi], axis=1), axis=0)
    return Topology(n, uniq, name=f"circulant-{n}")


def expander(n: int, rng: Optional[np.random.Generator] = None) -> Topology:
    """A random circulant expander with ``Theta(log n)`` offsets."""
    rng = rng or np.random.default_rng()
    k = max(3, int(np.ceil(np.log2(max(n, 4)))))
    offsets = rng.choice(np.arange(1, n // 2 + 1), size=min(k, n // 2), replace=False)
    topo = circulant(n, offsets.tolist())
    return Topology(topo.n, list(zip(topo.edge_u, topo.edge_v)), name=f"expander-{n}")


def lollipop(clique: int, tail: int) -> Topology:
    """Lollipop graph: ``K_clique`` with a path of ``tail`` extra nodes.

    A classic worst case for diffusion; used in stress tests.
    """
    if clique < 2 or tail < 1:
        raise TopologyError(f"lollipop needs clique >= 2 and tail >= 1")
    u, v = np.triu_indices(clique, k=1)
    edges = list(zip(u.tolist(), v.tolist()))
    prev = clique - 1
    for i in range(tail):
        node = clique + i
        edges.append((prev, node))
        prev = node
    return Topology(clique + tail, edges, name=f"lollipop-{clique}-{tail}")


def barbell(clique: int, bridge: int) -> Topology:
    """Two ``K_clique`` cliques joined by a path of ``bridge`` nodes."""
    if clique < 2 or bridge < 0:
        raise TopologyError("barbell needs clique >= 2 and bridge >= 0")
    u, v = np.triu_indices(clique, k=1)
    edges = list(zip(u.tolist(), v.tolist()))
    offset = clique + bridge
    edges += [(offset + a, offset + b) for a, b in zip(u.tolist(), v.tolist())]
    chain = [clique - 1] + [clique + i for i in range(bridge)] + [offset]
    edges += list(zip(chain[:-1], chain[1:]))
    return Topology(2 * clique + bridge, edges, name=f"barbell-{clique}-{bridge}")


# Re-export expander explicitly (defined above without forward declaration).
__all__.append("expander")
