"""Graph topology substrate.

:class:`Topology` is the numpy-first graph representation used by every
simulation engine in this library.  It stores an undirected simple graph as

* an edge list (two parallel ``int64`` arrays ``edge_u``/``edge_v`` with
  ``edge_u[k] < edge_v[k]`` for every edge ``k``), and
* a CSR-style adjacency structure (``adj_indptr``/``adj_indices``) that maps
  each node to its sorted neighbour list, plus ``adj_edge_ids`` giving the
  edge id of each incidence so per-edge quantities (flows, alphas) can be
  gathered per node without searching.

The class is immutable after construction; generators in the sibling modules
return fully validated instances.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import TopologyError

__all__ = ["Topology"]


class Topology:
    """An immutable undirected simple graph with numpy adjacency structures.

    Parameters
    ----------
    n:
        Number of nodes; nodes are the integers ``0 .. n-1``.
    edges:
        Iterable of ``(u, v)`` pairs.  Self loops and duplicate edges are
        rejected.  The pair order does not matter.
    name:
        Optional human-readable name used in reports and ``repr``.

    Notes
    -----
    The paper models the network as an undirected graph ``G = (V, E)`` whose
    nodes are processors and whose edges are communication links; all
    balancing algorithms in :mod:`repro.core` operate on this class.
    """

    __slots__ = (
        "n",
        "m_edges",
        "edge_u",
        "edge_v",
        "adj_indptr",
        "adj_indices",
        "adj_edge_ids",
        "degrees",
        "name",
        "grid_shape",
        "cube_dim",
        "link_latency",
        "link_bandwidth",
        "_edge_id_lookup",
    )

    def __init__(self, n: int, edges: Iterable[Tuple[int, int]], name: str = "graph"):
        if n <= 0:
            raise TopologyError(f"graph must have at least one node, got n={n}")
        edge_array = np.asarray(list(edges), dtype=np.int64)
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise TopologyError("edges must be an iterable of (u, v) pairs")
        if edge_array.size and (edge_array.min() < 0 or edge_array.max() >= n):
            raise TopologyError(
                f"edge endpoint out of range for n={n}: "
                f"min={edge_array.min()}, max={edge_array.max()}"
            )

        u = np.minimum(edge_array[:, 0], edge_array[:, 1])
        v = np.maximum(edge_array[:, 0], edge_array[:, 1])
        if np.any(u == v):
            bad = int(u[np.argmax(u == v)])
            raise TopologyError(f"self loop at node {bad} is not allowed")

        order = np.lexsort((v, u))
        u, v = u[order], v[order]
        if u.size > 1:
            dup = (u[1:] == u[:-1]) & (v[1:] == v[:-1])
            if np.any(dup):
                k = int(np.argmax(dup))
                raise TopologyError(f"duplicate edge ({int(u[k])}, {int(v[k])})")

        self.n = int(n)
        self.m_edges = int(u.size)
        self.edge_u = u
        self.edge_v = v
        self.name = name
        #: Optional spectral hint set by structured-graph builders: the side
        #: lengths of a full-wrap torus whose node ``(c_1, ..., c_k)`` has id
        #: ``ravel_multi_index(c, grid_shape)``.  ``None`` for every other
        #: graph.  Engines use it to switch to closed-form Fourier kernels;
        #: it carries no structural information beyond the edge list.
        self.grid_shape: Optional[Tuple[int, ...]] = None
        #: Optional spectral hint set by the hypercube builder: the cube
        #: dimension ``k`` of a ``2**k``-node hypercube whose node ids are
        #: the bit vectors.  ``None`` for every other graph.  Engines use
        #: it to switch to the Walsh–Hadamard closed-form kernel, exactly
        #: like ``grid_shape`` selects the torus Fourier kernel.
        self.cube_dim: Optional[int] = None
        #: Optional per-edge message latency in rounds (``(m_edges,)``
        #: float64, aligned with ``edge_u``/``edge_v``), the pyFogSim
        #: ``LINK_PR`` analogue.  ``None`` means the synchronous 0-latency
        #: regime; only the async engine reads it.  Set via
        #: :meth:`stamp_link_attrs`.
        self.link_latency: Optional[np.ndarray] = None
        #: Optional per-edge bandwidth in tokens per round (``LINK_BW``
        #: analogue): a message of size ``s`` occupies the link for
        #: ``s / bandwidth`` rounds on top of the latency.  ``None`` means
        #: infinite bandwidth.
        self.link_bandwidth: Optional[np.ndarray] = None

        # Build CSR adjacency: for every incidence store (node, neighbour,
        # edge id) and bucket by node.
        inc_nodes = np.concatenate([u, v])
        inc_neigh = np.concatenate([v, u])
        inc_edges = np.concatenate([np.arange(self.m_edges)] * 2).astype(np.int64)
        csr_order = np.lexsort((inc_neigh, inc_nodes))
        inc_nodes = inc_nodes[csr_order]
        self.adj_indices = inc_neigh[csr_order]
        self.adj_edge_ids = inc_edges[csr_order]
        self.degrees = np.bincount(inc_nodes, minlength=self.n).astype(np.int64)
        self.adj_indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(self.degrees, out=self.adj_indptr[1:])

        self._edge_id_lookup: Optional[dict] = None

        for arr in (
            self.edge_u,
            self.edge_v,
            self.adj_indptr,
            self.adj_indices,
            self.adj_edge_ids,
            self.degrees,
        ):
            arr.setflags(write=False)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def neighbors(self, node: int) -> np.ndarray:
        """Sorted neighbour ids of ``node`` (read-only view)."""
        lo, hi = self.adj_indptr[node], self.adj_indptr[node + 1]
        return self.adj_indices[lo:hi]

    def incident_edges(self, node: int) -> np.ndarray:
        """Edge ids incident to ``node``, aligned with :meth:`neighbors`."""
        lo, hi = self.adj_indptr[node], self.adj_indptr[node + 1]
        return self.adj_edge_ids[lo:hi]

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        return int(self.degrees[node])

    @property
    def max_degree(self) -> int:
        """Maximum degree ``d`` of the graph (0 for an edgeless graph)."""
        return int(self.degrees.max()) if self.n else 0

    @property
    def min_degree(self) -> int:
        """Minimum degree of the graph."""
        return int(self.degrees.min()) if self.n else 0

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges as ``(u, v)`` with ``u < v``."""
        for k in range(self.m_edges):
            yield int(self.edge_u[k]), int(self.edge_v[k])

    def edge_id(self, u: int, v: int) -> int:
        """Return the edge id of ``{u, v}``.

        Raises
        ------
        TopologyError
            If ``{u, v}`` is not an edge of the graph.
        """
        if self._edge_id_lookup is None:
            lookup = {}
            for k in range(self.m_edges):
                lookup[(int(self.edge_u[k]), int(self.edge_v[k]))] = k
            self._edge_id_lookup = lookup
        key = (min(u, v), max(u, v))
        try:
            return self._edge_id_lookup[key]
        except KeyError:
            raise TopologyError(f"({u}, {v}) is not an edge of {self.name}") from None

    def stamp_link_attrs(
        self,
        latency: Optional[object] = None,
        bandwidth: Optional[object] = None,
    ) -> "Topology":
        """Attach per-edge link attributes; returns ``self`` for chaining.

        ``latency`` (rounds, >= 0) and ``bandwidth`` (tokens/round, > 0) are
        each a scalar broadcast over every edge or an ``(m_edges,)`` array
        aligned with ``edge_u``/``edge_v``.  ``None`` leaves the attribute
        unset (synchronous latency / infinite bandwidth).  Like the spectral
        hints these are advisory: only the async engine reads them, and they
        do not participate in equality or hashing.
        """
        if latency is not None:
            arr = np.broadcast_to(
                np.asarray(latency, dtype=np.float64), (self.m_edges,)
            ).copy()
            if np.any(arr < 0.0) or not np.all(np.isfinite(arr)):
                raise TopologyError("link latency must be finite and >= 0")
            arr.setflags(write=False)
            self.link_latency = arr
        if bandwidth is not None:
            arr = np.broadcast_to(
                np.asarray(bandwidth, dtype=np.float64), (self.m_edges,)
            ).copy()
            if np.any(arr <= 0.0):
                raise TopologyError("link bandwidth must be > 0")
            arr.setflags(write=False)
            self.link_bandwidth = arr
        return self

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        if not (0 <= u < self.n and 0 <= v < self.n) or u == v:
            return False
        neigh = self.neighbors(u)
        pos = np.searchsorted(neigh, v)
        return pos < neigh.size and neigh[pos] == v

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Whether the graph is connected (BFS from node 0)."""
        if self.n == 1:
            return True
        return self.component_of(0).size == self.n

    def component_of(self, start: int) -> np.ndarray:
        """Node ids of the connected component containing ``start``."""
        seen = np.zeros(self.n, dtype=bool)
        seen[start] = True
        frontier = [start]
        while frontier:
            nxt: List[int] = []
            for node in frontier:
                for nb in self.neighbors(node):
                    if not seen[nb]:
                        seen[nb] = True
                        nxt.append(int(nb))
            frontier = nxt
        return np.nonzero(seen)[0]

    def connected_components(self) -> List[np.ndarray]:
        """All connected components, each as a sorted node-id array."""
        remaining = np.ones(self.n, dtype=bool)
        components = []
        while remaining.any():
            start = int(np.argmax(remaining))
            comp = self.component_of(start)
            components.append(comp)
            remaining[comp] = False
        return components

    def require_connected(self) -> "Topology":
        """Return ``self``; raise :class:`TopologyError` if disconnected."""
        if not self.is_connected():
            raise TopologyError(f"{self.name} is not connected")
        return self

    def is_bipartite(self) -> bool:
        """Whether the graph is bipartite (2-colourable).

        Bipartite structure matters for diffusion: non-lazy diffusion matrices
        on bipartite graphs have eigenvalue ``-1`` and fail to converge, which
        is why the standard ``alpha = 1/(max degree + 1)`` choice keeps a lazy
        self weight.
        """
        color = np.full(self.n, -1, dtype=np.int8)
        for start in range(self.n):
            if color[start] != -1:
                continue
            color[start] = 0
            frontier = [start]
            while frontier:
                nxt: List[int] = []
                for node in frontier:
                    for nb in self.neighbors(node):
                        if color[nb] == -1:
                            color[nb] = 1 - color[node]
                            nxt.append(int(nb))
                        elif color[nb] == color[node]:
                            return False
                frontier = nxt
        return True

    def diameter_lower_bound(self, start: int = 0) -> int:
        """Eccentricity of ``start`` — a cheap lower bound on the diameter."""
        dist = np.full(self.n, -1, dtype=np.int64)
        dist[start] = 0
        frontier = [start]
        d = 0
        while frontier:
            d += 1
            nxt: List[int] = []
            for node in frontier:
                for nb in self.neighbors(node):
                    if dist[nb] < 0:
                        dist[nb] = d
                        nxt.append(int(nb))
            frontier = nxt
        return int(dist.max())

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def adjacency_matrix(self) -> np.ndarray:
        """Dense ``n x n`` 0/1 adjacency matrix (float64)."""
        a = np.zeros((self.n, self.n), dtype=np.float64)
        a[self.edge_u, self.edge_v] = 1.0
        a[self.edge_v, self.edge_u] = 1.0
        return a

    def laplacian_matrix(self) -> np.ndarray:
        """Dense combinatorial Laplacian ``D - A``."""
        lap = -self.adjacency_matrix()
        lap[np.arange(self.n), np.arange(self.n)] = self.degrees
        return lap

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (lazy import)."""
        import networkx as nx

        g = nx.Graph(name=self.name)
        g.add_nodes_from(range(self.n))
        g.add_edges_from(zip(self.edge_u.tolist(), self.edge_v.tolist()))
        return g

    @classmethod
    def from_networkx(cls, graph, name: Optional[str] = None) -> "Topology":
        """Build a :class:`Topology` from a :class:`networkx.Graph`.

        Node labels are relabelled to ``0 .. n-1`` in sorted order.
        """
        nodes = sorted(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = [(index[a], index[b]) for a, b in graph.edges()]
        return cls(len(nodes), edges, name=name or getattr(graph, "name", "") or "graph")

    @classmethod
    def from_edge_list(
        cls, edges: Sequence[Tuple[int, int]], n: Optional[int] = None, name: str = "graph"
    ) -> "Topology":
        """Build from an edge list, inferring ``n`` as ``max endpoint + 1``."""
        if n is None:
            n = 1 + max((max(a, b) for a, b in edges), default=-1)
            if n <= 0:
                raise TopologyError("cannot infer node count from an empty edge list")
        return cls(n, edges, name=name)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"Topology(name={self.name!r}, n={self.n}, m={self.m_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return (
            self.n == other.n
            and self.m_edges == other.m_edges
            and bool(np.array_equal(self.edge_u, other.edge_u))
            and bool(np.array_equal(self.edge_v, other.edge_v))
        )

    def __hash__(self) -> int:
        return hash((self.n, self.m_edges, self.edge_u.tobytes(), self.edge_v.tobytes()))
