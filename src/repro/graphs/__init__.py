"""Graph substrate: topology representation, generators, and speed models.

Everything the balancing engines need to know about the network lives here:

* :class:`~repro.graphs.topology.Topology` — immutable numpy-backed graph,
* generators for every graph class in the paper's Table I
  (:func:`torus_2d`, :func:`hypercube`, :func:`configuration_model`,
  :func:`random_geometric`) plus standard families for tests and ablations,
* speed-vector constructors for the heterogeneous network model.
"""

from .topology import Topology
from .torus import grid_2d, torus_2d, torus_coordinates, torus_nd, torus_node_id
from .hypercube import hypercube
from .random_regular import configuration_model, paper_cm_degree, random_regular_strict
from .geometric import paper_rgg_radius, random_geometric
from .standard import (
    barbell,
    binary_tree,
    circulant,
    complete,
    complete_bipartite,
    cycle,
    expander,
    lollipop,
    path,
    star,
)
from .speeds import (
    geometric_speeds,
    normalize_speeds,
    powerlaw_speeds,
    random_integer_speeds,
    two_class_speeds,
    uniform_speeds,
    validate_speeds,
)

__all__ = [
    "Topology",
    "torus_2d",
    "torus_nd",
    "grid_2d",
    "torus_coordinates",
    "torus_node_id",
    "hypercube",
    "configuration_model",
    "random_regular_strict",
    "paper_cm_degree",
    "random_geometric",
    "paper_rgg_radius",
    "cycle",
    "path",
    "complete",
    "star",
    "complete_bipartite",
    "binary_tree",
    "circulant",
    "expander",
    "lollipop",
    "barbell",
    "uniform_speeds",
    "two_class_speeds",
    "powerlaw_speeds",
    "geometric_speeds",
    "random_integer_speeds",
    "validate_speeds",
    "normalize_speeds",
]
