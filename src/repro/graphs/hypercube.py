"""Hypercube graph generator.

The paper simulates load balancing on a hypercube with ``n = 2^20`` nodes
(Table I, Figure 13).  The ``k``-dimensional hypercube connects node ``u`` to
``u XOR (1 << b)`` for every bit ``b < k``; it is ``k``-regular with
``n = 2^k`` nodes.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import TopologyError
from .topology import Topology

__all__ = ["hypercube"]


def hypercube(
    dimension: int, link_latency=None, link_bandwidth=None
) -> Topology:
    """The ``dimension``-dimensional hypercube on ``2**dimension`` nodes.

    Parameters
    ----------
    dimension:
        Number of dimensions ``k >= 0``.  ``k = 0`` yields the single-node
        graph.
    link_latency, link_bandwidth:
        Optional per-edge link attributes (scalar or ``(m_edges,)``) stamped
        on the result for the async engine.

    Notes
    -----
    The diffusion matrix with ``alpha = 1/(d+1)`` on the hypercube has second
    largest eigenvalue ``lambda = 1 - 2/(k+1)`` (see Section VI-B of the
    paper), which :func:`repro.core.spectral.hypercube_spectrum` exposes in
    closed form.
    """
    if dimension < 0:
        raise TopologyError(f"hypercube dimension must be >= 0, got {dimension}")
    if dimension > 26:
        raise TopologyError(
            f"hypercube dimension {dimension} would allocate more than "
            "2^26 nodes; build it in pieces instead"
        )
    n = 1 << dimension
    nodes = np.arange(n, dtype=np.int64)
    edges = []
    for bit in range(dimension):
        mask = 1 << bit
        u = nodes[(nodes & mask) == 0]
        edges.append(np.stack([u, u | mask], axis=1))
    if edges:
        edge_array = np.concatenate(edges, axis=0)
    else:
        edge_array = np.empty((0, 2), dtype=np.int64)
    topo = Topology(n, edge_array, name=f"hypercube-{dimension}")
    if dimension >= 1:
        # Spectral hint: node ids are the bit vectors of {0,1}^k, so the
        # Walsh-Hadamard closed-form kernel applies (the engine analogue of
        # the torus builders' grid_shape hint).
        topo.cube_dim = dimension
    return topo.stamp_link_attrs(link_latency, link_bandwidth)
