"""Random (near-)regular graphs via the configuration model.

Table I of the paper uses a "Random Graph (CM)" with ``n = 10^6`` nodes and
degree ``d = floor(log2 n)``; CM stands for the configuration model of
Wormald (reference [22] in the paper).  This module implements the
configuration model from scratch:

* every node receives ``d`` half-edges (stubs),
* stubs are paired uniformly at random,
* self loops and duplicate edges are discarded (the *erased* configuration
  model), which for ``d = O(log n)`` removes only a vanishing fraction of
  edges and keeps the graph asymptotically ``d``-regular.

A strict variant that retries until a simple ``d``-regular graph is found is
provided for small instances.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import TopologyError
from .topology import Topology

__all__ = ["configuration_model", "random_regular_strict", "paper_cm_degree"]


def paper_cm_degree(n: int) -> int:
    """The paper's degree choice for configuration-model graphs.

    Table I uses ``d = floor(log2 n)``; for ``n = 10^6`` this gives the
    ``d = 19`` quoted in Figure 12.
    """
    if n < 2:
        raise TopologyError(f"need at least two nodes, got n={n}")
    return int(np.floor(np.log2(n)))


def configuration_model(
    n: int,
    degree: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    connect: bool = True,
) -> Topology:
    """Erased configuration-model graph with target degree ``degree``.

    Parameters
    ----------
    n:
        Number of nodes.
    degree:
        Stub count per node; defaults to the paper's ``floor(log2 n)``.
    rng:
        Source of randomness (defaults to a fresh default generator).
    connect:
        If true (default), nodes that end up isolated or in small components
        after erasure are stitched to the largest component by a single edge,
        mirroring the paper's treatment of random geometric graphs and
        guaranteeing the balancing process can reach every node.
    """
    if n < 2:
        raise TopologyError(f"need at least two nodes, got n={n}")
    if degree is None:
        degree = paper_cm_degree(n)
    if degree < 1 or degree >= n:
        raise TopologyError(f"degree must be in [1, n-1], got {degree}")
    rng = rng or np.random.default_rng()

    stubs = np.repeat(np.arange(n, dtype=np.int64), degree)
    if stubs.size % 2 == 1:
        stubs = stubs[:-1]  # drop one stub to make the pairing possible
    rng.shuffle(stubs)
    u = stubs[0::2]
    v = stubs[1::2]
    keep = u != v
    u, v = u[keep], v[keep]
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    pairs = np.unique(np.stack([lo, hi], axis=1), axis=0)

    topo = Topology(n, pairs, name=f"cm-{n}-d{degree}")
    if connect and not topo.is_connected():
        topo = _stitch_components(topo, rng)
    return topo


def random_regular_strict(
    n: int, degree: int, rng: Optional[np.random.Generator] = None, max_tries: int = 200
) -> Topology:
    """Exactly ``degree``-regular simple graph by rejection sampling.

    Repeatedly runs the configuration model pairing and rejects any outcome
    with self loops or multi-edges.  Only practical for small ``n * degree``
    (the acceptance probability decays roughly like
    ``exp(-(d^2-1)/4)``); intended for tests and small experiments.
    """
    if n < 2 or degree < 1 or degree >= n or (n * degree) % 2 == 1:
        raise TopologyError(
            f"no {degree}-regular simple graph on {n} nodes (parity/range check)"
        )
    rng = rng or np.random.default_rng()
    for _ in range(max_tries):
        stubs = np.repeat(np.arange(n, dtype=np.int64), degree)
        rng.shuffle(stubs)
        u = stubs[0::2]
        v = stubs[1::2]
        if np.any(u == v):
            continue
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        pairs = np.stack([lo, hi], axis=1)
        if np.unique(pairs, axis=0).shape[0] != pairs.shape[0]:
            continue
        topo = Topology(n, pairs, name=f"rr-{n}-d{degree}")
        if topo.is_connected():
            return topo
    raise TopologyError(
        f"failed to sample a connected {degree}-regular graph on {n} nodes "
        f"after {max_tries} tries"
    )


def _stitch_components(topo: Topology, rng: np.random.Generator) -> Topology:
    """Connect all components to the largest one with single random edges."""
    components = topo.connected_components()
    components.sort(key=len, reverse=True)
    main = components[0]
    extra = []
    for comp in components[1:]:
        a = int(rng.choice(comp))
        b = int(rng.choice(main))
        extra.append((a, b))
    edges = list(zip(topo.edge_u.tolist(), topo.edge_v.tolist())) + extra
    return Topology(topo.n, edges, name=topo.name)
