"""Persistence helpers for experiment results."""

from .results import ExperimentRecord, list_records, load_record, save_record

__all__ = ["ExperimentRecord", "save_record", "load_record", "list_records"]
