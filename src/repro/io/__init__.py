"""Persistence helpers for experiment results."""

from .checkpoint import load_checkpoint, save_checkpoint
from .results import (
    ExperimentRecord,
    dynamic_result_record,
    list_records,
    load_record,
    result_record,
    save_record,
)
from .traces import load_arrival_trace, save_arrival_trace

__all__ = [
    "ExperimentRecord",
    "result_record",
    "dynamic_result_record",
    "save_record",
    "load_record",
    "list_records",
    "save_arrival_trace",
    "load_arrival_trace",
    "save_checkpoint",
    "load_checkpoint",
]
