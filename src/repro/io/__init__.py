"""Persistence helpers for experiment results."""

from .results import (
    ExperimentRecord,
    list_records,
    load_record,
    result_record,
    save_record,
)

__all__ = [
    "ExperimentRecord",
    "result_record",
    "save_record",
    "load_record",
    "list_records",
]
