"""Persistence helpers for experiment results."""

from .results import (
    ExperimentRecord,
    dynamic_result_record,
    list_records,
    load_record,
    result_record,
    save_record,
)

__all__ = [
    "ExperimentRecord",
    "result_record",
    "dynamic_result_record",
    "save_record",
    "load_record",
    "list_records",
]
