"""Engine-session checkpoint persistence (JSON).

A checkpoint is the complete mid-run state of an
:class:`~repro.engines.session.EngineSession`: the load/flow vectors, the
RNG bit-generator states, the recorded table rows and the arrival
accounting.  Everything is stored as JSON — numpy float64 values
round-trip exactly through Python's repr-based float serialisation, and
generator states are arbitrary-precision ints — so a resumed session
reproduces the uninterrupted run bit for bit.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from ..exceptions import ConfigurationError
from .results import _jsonable

__all__ = ["save_checkpoint", "load_checkpoint"]

_CKPT_FORMAT = "repro-session-checkpoint"
_CKPT_VERSION = 1


def save_checkpoint(path: str, state: Dict[str, Any]) -> str:
    """Write a session state dict to ``path``; returns the path."""
    payload = {
        "format": _CKPT_FORMAT,
        "version": _CKPT_VERSION,
        "state": _jsonable(state),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return path


def load_checkpoint(path: str) -> Dict[str, Any]:
    """Read a session state dict back from ``path``."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise ConfigurationError(f"checkpoint file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"checkpoint {path} is not valid JSON: {exc}"
        ) from None
    if not isinstance(payload, dict) or payload.get("format") != _CKPT_FORMAT:
        raise ConfigurationError(
            f"{path} is not a session checkpoint (missing format marker "
            f"{_CKPT_FORMAT!r})"
        )
    if payload.get("version") != _CKPT_VERSION:
        raise ConfigurationError(
            f"unsupported checkpoint version {payload.get('version')!r} in "
            f"{path} (supported: {_CKPT_VERSION})"
        )
    state = payload.get("state")
    if not isinstance(state, dict):
        raise ConfigurationError(f"checkpoint {path} carries no state dict")
    return state
