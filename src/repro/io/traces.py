"""Arrival-trace persistence (JSON).

A trace is a recorded per-round delta stream: a ``(rounds, n)`` float64
array whose row ``r`` holds the per-node token deltas injected at round
``r``.  :func:`save_arrival_trace` / :func:`load_arrival_trace`
round-trip it through JSON, and ``--arrivals trace:FILE`` replays it via
:class:`~repro.core.dynamic.TraceArrivals` — deterministically, so a
recorded workload reproduces bit for bit on any engine.
"""

from __future__ import annotations

import json
from typing import Any, Dict

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["save_arrival_trace", "load_arrival_trace"]

_TRACE_FORMAT = "repro-arrival-trace"
_TRACE_VERSION = 1


def save_arrival_trace(path: str, deltas) -> str:
    """Write a ``(rounds, n)`` per-round delta stream to ``path``.

    ``deltas`` is anything :func:`numpy.asarray` turns into a finite 2D
    float64 array.  Returns the path.
    """
    arr = np.asarray(deltas, dtype=np.float64)
    if arr.ndim != 2:
        raise ConfigurationError(
            f"arrival trace must be 2D (rounds, n), got shape {arr.shape}"
        )
    if arr.size and not np.isfinite(arr).all():
        raise ConfigurationError("arrival trace must be finite")
    payload = {
        "format": _TRACE_FORMAT,
        "version": _TRACE_VERSION,
        "rounds": int(arr.shape[0]),
        "n": int(arr.shape[1]),
        "deltas": arr.tolist(),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return path


def load_arrival_trace(path: str) -> np.ndarray:
    """Read a delta stream back as a ``(rounds, n)`` float64 array."""
    try:
        with open(path) as handle:
            payload: Dict[str, Any] = json.load(handle)
    except FileNotFoundError:
        raise ConfigurationError(f"arrival trace file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"arrival trace {path} is not valid JSON: {exc}"
        ) from None
    if not isinstance(payload, dict) or payload.get("format") != _TRACE_FORMAT:
        raise ConfigurationError(
            f"{path} is not an arrival trace (missing format marker "
            f"{_TRACE_FORMAT!r})"
        )
    if payload.get("version") != _TRACE_VERSION:
        raise ConfigurationError(
            f"unsupported arrival trace version {payload.get('version')!r} "
            f"in {path} (supported: {_TRACE_VERSION})"
        )
    try:
        arr = np.asarray(payload["deltas"], dtype=np.float64)
    except (KeyError, ValueError) as exc:
        raise ConfigurationError(
            f"arrival trace {path} has a malformed deltas array: {exc}"
        ) from None
    rounds, n = int(payload.get("rounds", -1)), int(payload.get("n", -1))
    if arr.ndim != 2 or arr.shape != (rounds, n):
        raise ConfigurationError(
            f"arrival trace {path} shape {arr.shape} does not match its "
            f"header (rounds={rounds}, n={n})"
        )
    return arr
