"""Experiment record persistence (JSON).

An :class:`ExperimentRecord` bundles the identifying metadata of one
experiment (name, parameters) with its numeric outcome (summary scalars and
named series).  Records round-trip through JSON so the benchmark harness can
archive every table/figure reproduction next to ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["ExperimentRecord", "save_record", "load_record", "list_records"]


def _jsonable(value: Any) -> Any:
    """Convert numpy scalars/arrays into plain Python containers."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


@dataclass
class ExperimentRecord:
    """One experiment's identity, parameters, and results.

    Attributes
    ----------
    name:
        Experiment identifier (e.g. ``"fig01"``, ``"table1"``).
    params:
        Input parameters (graph, sizes, seeds, ...).
    summary:
        Scalar outcomes (convergence rounds, plateau levels, ...).
    series:
        Named numeric time series (one list per metric).
    """

    name: str
    params: Dict[str, Any] = field(default_factory=dict)
    summary: Dict[str, Any] = field(default_factory=dict)
    series: Dict[str, List[float]] = field(default_factory=dict)

    def to_json(self) -> str:
        """Serialise to a JSON string."""
        return json.dumps(_jsonable(asdict(self)), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentRecord":
        """Parse a record from its JSON representation."""
        data = json.loads(text)
        missing = {"name"} - set(data)
        if missing:
            raise ConfigurationError(f"record is missing fields: {missing}")
        return cls(
            name=data["name"],
            params=data.get("params", {}),
            summary=data.get("summary", {}),
            series=data.get("series", {}),
        )


def save_record(record: ExperimentRecord, directory: str) -> str:
    """Write ``<directory>/<name>.json``; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{record.name}.json")
    with open(path, "w") as handle:
        handle.write(record.to_json())
    return path


def load_record(path: str) -> ExperimentRecord:
    """Read a record back from disk."""
    with open(path) as handle:
        return ExperimentRecord.from_json(handle.read())


def list_records(directory: str) -> List[str]:
    """Sorted record paths below ``directory`` (empty if absent)."""
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(".json")
    )
