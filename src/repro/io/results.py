"""Experiment record persistence (JSON).

An :class:`ExperimentRecord` bundles the identifying metadata of one
experiment (name, parameters) with its numeric outcome (summary scalars and
named series).  Records round-trip through JSON so the benchmark harness can
archive every table/figure reproduction next to ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "ExperimentRecord",
    "result_record",
    "dynamic_result_record",
    "save_record",
    "load_record",
    "list_records",
]


def _jsonable(value: Any) -> Any:
    """Convert numpy scalars/arrays into plain Python containers."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


@dataclass
class ExperimentRecord:
    """One experiment's identity, parameters, and results.

    Attributes
    ----------
    name:
        Experiment identifier (e.g. ``"fig01"``, ``"table1"``).
    params:
        Input parameters (graph, sizes, seeds, ...).
    summary:
        Scalar outcomes (convergence rounds, plateau levels, ...).
    series:
        Named numeric time series (one list per metric).
    """

    name: str
    params: Dict[str, Any] = field(default_factory=dict)
    summary: Dict[str, Any] = field(default_factory=dict)
    series: Dict[str, List[float]] = field(default_factory=dict)

    def to_json(self) -> str:
        """Serialise to a JSON string."""
        return json.dumps(_jsonable(asdict(self)), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentRecord":
        """Parse a record from its JSON representation."""
        data = json.loads(text)
        missing = {"name"} - set(data)
        if missing:
            raise ConfigurationError(f"record is missing fields: {missing}")
        return cls(
            name=data["name"],
            params=data.get("params", {}),
            summary=data.get("summary", {}),
            series=data.get("series", {}),
        )


def result_record(
    name: str,
    result,
    params: Optional[Dict[str, Any]] = None,
    summary: Optional[Dict[str, Any]] = None,
    fields: Optional[List[str]] = None,
) -> ExperimentRecord:
    """Archive a :class:`~repro.core.simulator.SimulationResult` as a record.

    Consumes the result's columnar record table directly: every requested
    metric column becomes a named series (the round index is always
    included), without materialising per-round Python objects.
    """
    from ..core.records import FLOAT_FIELDS

    table = result.table
    series: Dict[str, List[float]] = {
        "round": table.column("round_index").tolist()
    }
    for field_name in fields if fields is not None else FLOAT_FIELDS:
        series[field_name] = table.column(field_name).tolist()
    summary = dict(summary or {})
    summary.setdefault("rounds_recorded", len(table))
    if result.switched_at is not None:
        summary.setdefault("switched_at", result.switched_at)
    if result.stopped_at is not None:
        summary.setdefault("stopped_at", result.stopped_at)
    return ExperimentRecord(
        name=name, params=dict(params or {}), summary=summary, series=series
    )


def dynamic_result_record(
    name: str,
    result,
    params: Optional[Dict[str, Any]] = None,
    summary: Optional[Dict[str, Any]] = None,
    fields: Optional[List[str]] = None,
) -> ExperimentRecord:
    """Archive a :class:`~repro.core.dynamic.DynamicResult` as a record.

    Consumes the dynamic columnar record table directly — every requested
    metric column becomes a named series (the round index is always
    included) — and summarises the run with its exact token accounting and
    the steady-state imbalance.
    """
    from ..core.records import DYNAMIC_FLOAT_FIELDS

    table = result.table
    series: Dict[str, List[float]] = {
        "round": table.column("round_index").tolist()
    }
    for field_name in fields if fields is not None else DYNAMIC_FLOAT_FIELDS:
        series[field_name] = table.column(field_name).tolist()
    summary = dict(summary or {})
    summary.setdefault("rounds_recorded", len(table))
    if len(table):
        summary.setdefault(
            "final_total_load", float(table.column("total_load")[-1])
        )
        summary.setdefault(
            "arrived_total", float(table.column("arrived").sum())
        )
        summary.setdefault(
            "departed_total", float(table.column("departed").sum())
        )
        summary.setdefault(
            "steady_state_imbalance", result.steady_state_imbalance()
        )
    return ExperimentRecord(
        name=name, params=dict(params or {}), summary=summary, series=series
    )


def save_record(record: ExperimentRecord, directory: str) -> str:
    """Write ``<directory>/<name>.json``; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{record.name}.json")
    with open(path, "w") as handle:
        handle.write(record.to_json())
    return path


def load_record(path: str) -> ExperimentRecord:
    """Read a record back from disk."""
    with open(path) as handle:
        return ExperimentRecord.from_json(handle.read())


def list_records(directory: str) -> List[str]:
    """Sorted record paths below ``directory`` (empty if absent)."""
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(".json")
    )
