"""Exception hierarchy for the :mod:`repro` load balancing library.

All library-raised errors derive from :class:`ReproError` so that callers can
catch every library failure with a single ``except`` clause while still being
able to distinguish configuration problems from runtime problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An object was constructed with invalid or inconsistent parameters."""


class TopologyError(ConfigurationError):
    """A graph/topology is malformed (e.g. self loops, disconnected, empty)."""


class SpeedError(ConfigurationError):
    """A speed vector is invalid (non-positive entries, wrong length, ...)."""


class SchemeError(ConfigurationError):
    """A balancing scheme was configured incorrectly (e.g. beta out of range)."""


class RoundingError(ReproError):
    """A rounding scheme produced or detected an invalid flow."""


class SimulationError(ReproError):
    """The simulation driver hit an unrecoverable inconsistency."""


class ConvergenceError(SimulationError):
    """A process failed to converge within the allowed number of rounds."""


class ProtocolError(ReproError):
    """A message-passing protocol violated its contract."""
